//! Reachability predicates over the live subgraph of a [`Topology`].
//!
//! Two policies:
//!
//! * [`Reachability::Transitive`] — plain graph connectivity by
//!   union-find: a pair of hosts communicates iff some path of live
//!   links through live switches (and relaying hosts) joins them. This
//!   is the survivability notion for general datacenter fabrics, where
//!   forwarding is multi-hop (Couto et al.).
//! * [`Reachability::OneHostRelay`] — the DRS predicate: the pair shares
//!   a live switch component directly, or a **single** gateway host can
//!   see both sides. DRS installs one-hop gateway routes only, so relay
//!   chains do not transit. On the degenerate K-plane topology this is
//!   exactly the analytic `pair_connected_k`; at `K = 2` it coincides
//!   with the transitive predicate (any path between hosts crosses from
//!   plane A to plane B at most once, and the crossing host is the
//!   gateway), while at `K ≥ 3` it is strictly stronger.
//!
//! Hosts are not failure components — only switches and links fail —
//! but a failed switch removes its node from the live subgraph, exactly
//! like the simulator's "all incident NICs down" mapping.

use crate::graph::{ComponentSet, TopoComponent, Topology};

/// Which connectivity notion to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reachability {
    /// Union-find connectivity over the whole live subgraph (multi-hop
    /// forwarding).
    Transitive,
    /// The DRS notion: a directly shared live switch component, or one
    /// gateway host seeing both endpoints. Host-to-host links (DCell
    /// cross links) are ignored — DRS has no concept of them.
    OneHostRelay,
}

/// Reusable scratch for repeated pair queries over one topology —
/// the enumeration engines call [`ReachEngine::pair_connected`] once per
/// failure subset, so allocations must not be per-query.
pub struct ReachEngine<'a> {
    topo: &'a Topology,
    /// Union-find parent, over all nodes (Transitive) or switches only
    /// (OneHostRelay).
    parent: Vec<u32>,
}

impl<'a> ReachEngine<'a> {
    /// Prepares an engine for `topo`.
    #[must_use]
    pub fn new(topo: &'a Topology) -> Self {
        ReachEngine {
            topo,
            parent: vec![0; topo.nodes()],
        }
    }

    /// The topology this engine evaluates.
    #[must_use]
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            let g = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = g;
            v = g;
        }
        v
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins: keeps find results deterministic and
            // root ids within the original index range.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }

    /// Whether hosts `s` and `t` can communicate with the components in
    /// `failed` down, under `policy`.
    ///
    /// # Panics
    /// Panics if `s` or `t` is not a host, if `s == t`, or (for
    /// [`Reachability::OneHostRelay`]) if the topology has more than 128
    /// switches.
    #[must_use]
    pub fn pair_connected(
        &mut self,
        failed: &ComponentSet,
        s: usize,
        t: usize,
        policy: Reachability,
    ) -> bool {
        assert!(
            self.topo.is_host(s) && self.topo.is_host(t),
            "pair endpoints must be hosts"
        );
        assert_ne!(s, t, "a host does not message itself");
        match policy {
            Reachability::Transitive => self.transitive(failed, s, t),
            Reachability::OneHostRelay => self.one_host_relay(failed, s, t),
        }
    }

    fn switch_is_live(&self, v: usize, failed: &ComponentSet) -> bool {
        match self.topo.switch_of_node(v) {
            Some(sw) => !failed.contains(sw),
            None => true, // hosts never fail
        }
    }

    fn transitive(&mut self, failed: &ComponentSet, s: usize, t: usize) -> bool {
        let nodes = self.topo.nodes();
        for v in 0..nodes {
            self.parent[v] = v as u32;
        }
        let switches = self.topo.switches();
        for (li, link) in self.topo.links().iter().enumerate() {
            if failed.contains(switches + li) {
                continue;
            }
            if !self.switch_is_live(link.a as usize, failed)
                || !self.switch_is_live(link.b as usize, failed)
            {
                continue;
            }
            self.union(link.a, link.b);
        }
        self.find(s as u32) == self.find(t as u32)
    }

    /// The live switch-component mask of host `h`: one bit per union-find
    /// root among the switches `h` reaches over a single live link.
    fn host_mask(&mut self, h: usize, failed: &ComponentSet) -> u128 {
        let switches = self.topo.switches();
        let hosts = self.topo.hosts();
        let mut mask = 0u128;
        for i in 0..self.topo.incident_links(h).len() {
            let li = self.topo.incident_links(h)[i] as usize;
            if failed.contains(switches + li) {
                continue;
            }
            let link = self.topo.links()[li];
            let other = if link.a as usize == h { link.b } else { link.a } as usize;
            if other < hosts {
                continue; // host-host link: outside the DRS model
            }
            let sw = other - hosts;
            if failed.contains(sw) {
                continue;
            }
            mask |= 1 << self.find(sw as u32);
        }
        mask
    }

    fn one_host_relay(&mut self, failed: &ComponentSet, s: usize, t: usize) -> bool {
        let switches = self.topo.switches();
        assert!(
            switches <= 128,
            "OneHostRelay supports at most 128 switches"
        );
        let hosts = self.topo.hosts();
        // Union-find over the live switch-switch subgraph only (slots
        // 0..switches of the parent scratch).
        for sw in 0..switches {
            self.parent[sw] = sw as u32;
        }
        for (li, link) in self.topo.links().iter().enumerate() {
            if failed.contains(switches + li) {
                continue;
            }
            let (a, b) = (link.a as usize, link.b as usize);
            if a < hosts || b < hosts {
                continue; // not a switch-switch link
            }
            let (sa, sb) = (a - hosts, b - hosts);
            if failed.contains(sa) || failed.contains(sb) {
                continue;
            }
            self.union(sa as u32, sb as u32);
        }
        let ms = self.host_mask(s, failed);
        let mt = self.host_mask(t, failed);
        if ms & mt != 0 {
            return true;
        }
        if ms == 0 || mt == 0 {
            return false;
        }
        for g in 0..hosts {
            if g == s || g == t {
                continue;
            }
            let mg = self.host_mask(g, failed);
            if mg & ms != 0 && mg & mt != 0 {
                return true;
            }
        }
        false
    }
}

/// One-shot convenience over [`ReachEngine`]; prefer keeping an engine
/// when evaluating many subsets.
#[must_use]
pub fn pair_connected(
    topo: &Topology,
    failed: &ComponentSet,
    s: usize,
    t: usize,
    policy: Reachability,
) -> bool {
    ReachEngine::new(topo).pair_connected(failed, s, t, policy)
}

/// Maps a failed component to the nodes it silences, for documentation
/// and the simulator's fault bridge: a failed link silences nothing by
/// itself (the segment dies), a failed switch removes its node.
#[must_use]
pub fn failed_node_of(topo: &Topology, c: TopoComponent) -> Option<usize> {
    match c {
        TopoComponent::Switch(s) => Some(topo.switch_node(s)),
        TopoComponent::Link(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{dcell, fat_tree, kplane};

    fn set(indices: &[usize]) -> ComponentSet {
        ComponentSet::from_indices(indices)
    }

    #[test]
    fn healthy_topologies_connect_every_pair_under_both_policies() {
        for topo in [kplane(4, 2), kplane(4, 3), fat_tree(4)] {
            let mut eng = ReachEngine::new(&topo);
            let h = topo.hosts();
            for s in 0..h {
                for t in s + 1..h {
                    assert!(eng.pair_connected(&set(&[]), s, t, Reachability::Transitive));
                    assert!(eng.pair_connected(&set(&[]), s, t, Reachability::OneHostRelay));
                }
            }
        }
    }

    #[test]
    fn dcell_cross_links_carry_traffic_transitively() {
        // DCell(4,1): kill both endpoints' switches; the direct cross
        // link (or a relay through other cells) must still connect them.
        let topo = dcell(4, 1);
        let mut eng = ReachEngine::new(&topo);
        // Host 0 (cell 0) and host 4 (cell 1) are joined by a cross link.
        assert!(eng.pair_connected(&set(&[0, 1]), 0, 4, Reachability::Transitive));
        // OneHostRelay ignores host-host links: with both switches dead
        // the DRS predicate sees no shared segment at all.
        assert!(!eng.pair_connected(&set(&[0, 1]), 0, 4, Reachability::OneHostRelay));
    }

    #[test]
    fn relay_is_one_hop_not_transitive_at_k3() {
        // The analytic layer's canonical K=3 chain: attachment profiles
        // host0={A}, host1={C}, host2={A,B}, host3={B,C} — transitively
        // connected, but no single gateway sees both host0 and host1.
        let n = 4;
        let topo = kplane(n, 3);
        let k = 3;
        let nic = |p: usize, i: usize| k + p * n + i;
        // Fail NICs so the profiles above remain.
        let failed = set(&[
            nic(1, 0), // host0 off B
            nic(2, 0), // host0 off C
            nic(0, 1), // host1 off A
            nic(1, 1), // host1 off B
            nic(2, 2), // host2 off C
            nic(0, 3), // host3 off A
        ]);
        let mut eng = ReachEngine::new(&topo);
        assert!(
            eng.pair_connected(&failed, 0, 1, Reachability::Transitive),
            "a two-gateway chain exists"
        );
        assert!(
            !eng.pair_connected(&failed, 0, 1, Reachability::OneHostRelay),
            "DRS cannot chain gateways"
        );
        // Each single hop of the chain is fine under DRS.
        assert!(eng.pair_connected(&failed, 0, 2, Reachability::OneHostRelay));
        assert!(eng.pair_connected(&failed, 2, 3, Reachability::OneHostRelay));
        assert!(eng.pair_connected(&failed, 3, 1, Reachability::OneHostRelay));
    }

    #[test]
    fn policies_coincide_exhaustively_at_k2() {
        // At K=2 every host-to-host path crosses planes at most once, so
        // one gateway suffices: the predicates are equal on all 2^m
        // subsets.
        for n in [2usize, 3, 4] {
            let topo = kplane(n, 2);
            let m = topo.component_count();
            let mut eng = ReachEngine::new(&topo);
            for bits in 0u32..1 << m {
                let indices: Vec<usize> = (0..m).filter(|&i| bits >> i & 1 == 1).collect();
                let failed = ComponentSet::from_indices(&indices);
                for s in 0..n {
                    for t in s + 1..n {
                        assert_eq!(
                            eng.pair_connected(&failed, s, t, Reachability::Transitive),
                            eng.pair_connected(&failed, s, t, Reachability::OneHostRelay),
                            "n={n} bits={bits:b} pair=({s},{t})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fat_tree_survives_single_core_loss_but_not_edge_cut() {
        let topo = fat_tree(4);
        let mut eng = ReachEngine::new(&topo);
        let (s, t) = (0, topo.hosts() - 1);
        // Any one core switch down: still connected.
        for c in 0..4 {
            let core_sw = 8 + 8 + c; // edge(8) + agg(8) + core index
            assert!(eng.pair_connected(&set(&[core_sw]), s, t, Reachability::Transitive));
        }
        // Host 0's only edge link down: fully cut.
        let first_host_link = topo.switches(); // component of link 0
        assert!(!eng.pair_connected(&set(&[first_host_link]), s, t, Reachability::Transitive));
        // Host 0's edge switch down: also cut.
        assert!(!eng.pair_connected(&set(&[0]), s, t, Reachability::Transitive));
    }

    #[test]
    fn failed_node_mapping() {
        let topo = kplane(3, 2);
        assert_eq!(
            failed_node_of(&topo, TopoComponent::Switch(1)),
            Some(topo.hosts() + 1)
        );
        assert_eq!(failed_node_of(&topo, TopoComponent::Link(0)), None);
    }
}
