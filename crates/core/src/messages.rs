//! DRS control messages.
//!
//! DRS needs remarkably little signalling: the monitoring phase is pure
//! ICMP, and repair only speaks when **both** direct links to a peer are
//! gone — a broadcast question ("who can still reach X?") answered by
//! unicast offers. Requests carry a per-requester id so stale offers from
//! an earlier round cannot install an outdated gateway.

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;

/// A DRS control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DrsMsg {
    /// Broadcast: "can anyone act as a gateway between me and `target`?"
    RouteRequest {
        /// The unreachable peer.
        target: NodeId,
        /// Requester-local discovery round, echoed in offers.
        req_id: u64,
    },
    /// Unicast answer: "I have live direct links to both of you."
    RouteOffer {
        /// The peer the offer is about.
        target: NodeId,
        /// The `req_id` of the request being answered.
        req_id: u64,
    },
}

impl DrsMsg {
    /// The peer this message concerns.
    #[must_use]
    pub fn target(&self) -> NodeId {
        match self {
            DrsMsg::RouteRequest { target, .. } | DrsMsg::RouteOffer { target, .. } => *target,
        }
    }

    /// The discovery round this message belongs to.
    #[must_use]
    pub fn req_id(&self) -> u64 {
        match self {
            DrsMsg::RouteRequest { req_id, .. } | DrsMsg::RouteOffer { req_id, .. } => *req_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let rq = DrsMsg::RouteRequest {
            target: NodeId(4),
            req_id: 9,
        };
        let of = DrsMsg::RouteOffer {
            target: NodeId(4),
            req_id: 9,
        };
        assert_eq!(rq.target(), NodeId(4));
        assert_eq!(of.target(), NodeId(4));
        assert_eq!(rq.req_id(), 9);
        assert_eq!(of.req_id(), 9);
        assert_ne!(rq, of);
    }
}
