//! Daemon-side observability: counters and a timestamped event log.
//!
//! The experiments measure DRS from the outside (did the application
//! notice?) *and* from the inside: when was a failure detected, when was
//! the route repaired, how often did repair need a gateway. The event log
//! records every state transition with its virtual timestamp so the
//! benches can compute detection and repair latencies against known fault
//! injection times.

use serde::{Deserialize, Serialize};

use crate::ids::{NetId, NodeId};
use crate::routes::Route;
use crate::time::SimTime;

/// A state transition observed by one daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DrsEventKind {
    /// A `(peer, net)` link was declared down.
    LinkDown {
        /// Peer whose link failed.
        peer: NodeId,
        /// Network on which it failed.
        net: NetId,
    },
    /// A `(peer, net)` link recovered.
    LinkUp {
        /// Peer whose link recovered.
        peer: NodeId,
        /// Network on which it recovered.
        net: NetId,
    },
    /// The kernel route to `dst` was changed.
    RouteChanged {
        /// Destination whose route changed.
        dst: NodeId,
        /// The newly installed route.
        route: Route,
    },
    /// A gateway discovery broadcast was sent for `target`.
    DiscoveryStarted {
        /// The unreachable peer.
        target: NodeId,
    },
    /// A discovery round ended with no usable offer.
    DiscoveryFailed {
        /// The peer that remained unreachable.
        target: NodeId,
    },
}

/// One timestamped daemon event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrsEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: DrsEventKind,
}

/// One probe transmission, as recorded by the optional probe log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeRecord {
    /// When the probe was sent.
    pub at: SimTime,
    /// The probed peer.
    pub peer: NodeId,
    /// The probed network plane.
    pub net: NetId,
    /// The ICMP sequence number used.
    pub seq: u32,
}

/// Aggregate counters plus the event log of one daemon.
#[derive(Debug, Clone, Default)]
pub struct DrsMetrics {
    /// Probes transmitted.
    pub probes_sent: u64,
    /// Echo replies processed.
    pub replies_received: u64,
    /// Probe timeouts processed (stale ones included).
    pub timeouts: u64,
    /// Links declared down.
    pub link_down_events: u64,
    /// Links declared up again.
    pub link_up_events: u64,
    /// Route changes installed into the kernel.
    pub route_changes: u64,
    /// Failovers that used the redundant network directly.
    pub direct_failovers: u64,
    /// Failovers that installed a gateway route.
    pub gateway_failovers: u64,
    /// Reverts back to a direct route after recovery.
    pub reverts: u64,
    /// Discovery broadcasts sent.
    pub discoveries: u64,
    /// Gateway offers this daemon sent to others.
    pub offers_sent: u64,
    /// Timestamped transition log, kept sorted by timestamp ([`DrsMetrics::log`]).
    pub events: Vec<DrsEvent>,
    /// Every probe send, in transmission order. Empty unless
    /// [`crate::config::DrsConfig::record_probe_log`] is on — it exists
    /// for the monitor-equivalence tests, not for production runs.
    pub probe_log: Vec<ProbeRecord>,
}

impl DrsMetrics {
    /// Appends a timestamped event, keeping the log sorted by timestamp.
    ///
    /// The daemon logs in virtual-time order, so this is an O(1) push on
    /// the hot path; an out-of-order timestamp (a replayed or merged
    /// log) falls back to a sorted insert *after* existing events with
    /// the same timestamp, preserving arrival order among equals.
    pub fn log(&mut self, at: SimTime, kind: DrsEventKind) {
        let event = DrsEvent { at, kind };
        match self.events.last() {
            Some(last) if last.at > at => {
                let i = self.events.partition_point(|e| e.at <= at);
                self.events.insert(i, event);
            }
            _ => self.events.push(event),
        }
    }

    /// First event at or after `t0` matching `pred`, for latency
    /// measurements. Binary-searches to the first candidate timestamp
    /// (the log is sorted — see [`DrsMetrics::log`]), then scans only the
    /// tail, so dense logs stay cheap to query repeatedly.
    pub fn first_after(
        &self,
        t0: SimTime,
        mut pred: impl FnMut(&DrsEventKind) -> bool,
    ) -> Option<DrsEvent> {
        let start = self.events.partition_point(|e| e.at < t0);
        self.events[start..].iter().find(|e| pred(&e.kind)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_query() {
        let mut m = DrsMetrics::default();
        m.log(
            SimTime(10),
            DrsEventKind::LinkDown {
                peer: NodeId(1),
                net: NetId::A,
            },
        );
        m.log(
            SimTime(20),
            DrsEventKind::RouteChanged {
                dst: NodeId(1),
                route: Route::Direct(NetId::B),
            },
        );
        let hit = m
            .first_after(SimTime(0), |k| {
                matches!(k, DrsEventKind::RouteChanged { .. })
            })
            .unwrap();
        assert_eq!(hit.at, SimTime(20));
        assert!(m
            .first_after(SimTime(25), |k| matches!(
                k,
                DrsEventKind::RouteChanged { .. }
            ))
            .is_none());
    }

    fn discovery(target: u32) -> DrsEventKind {
        DrsEventKind::DiscoveryStarted {
            target: NodeId(target),
        }
    }

    #[test]
    fn out_of_order_insertion_keeps_the_log_sorted_and_queries_exact() {
        let mut m = DrsMetrics::default();
        for (t, target) in [
            (30u64, 30u32),
            (10, 10),
            (20, 20),
            (25, 25),
            (5, 5),
            (20, 21),
        ] {
            m.log(SimTime(t), discovery(target));
        }
        let times: Vec<u64> = m.events.iter().map(|e| e.at.0).collect();
        assert_eq!(times, [5, 10, 20, 20, 25, 30]);
        // Equal timestamps preserve arrival order: target 20 was logged
        // before target 21.
        let ats_20: Vec<u32> = m
            .events
            .iter()
            .filter(|e| e.at == SimTime(20))
            .map(|e| match e.kind {
                DrsEventKind::DiscoveryStarted { target } => target.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ats_20, [20, 21]);
        // Binary-searched queries agree with a linear scan at every cut.
        for t0 in 0..35u64 {
            let fast = m.first_after(SimTime(t0), |_| true);
            let slow = m.events.iter().find(|e| e.at >= SimTime(t0)).copied();
            assert_eq!(fast, slow, "t0={t0}");
        }
    }

    #[test]
    fn first_after_skips_earlier_matches() {
        let mut m = DrsMetrics::default();
        m.log(SimTime(1), discovery(1));
        m.log(SimTime(9), discovery(9));
        let hit = m.first_after(SimTime(2), |_| true).unwrap();
        assert_eq!(hit.at, SimTime(9));
    }
}
