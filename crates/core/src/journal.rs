//! Recorded daemon inputs for deterministic trace replay.
//!
//! The daemon is a pure state machine over the [`crate::io::DrsIo`]
//! boundary (see its determinism contract): its behaviour is fully
//! determined by the *inputs* it is handed (which handler fired, with
//! what arguments, at what time) plus the results of its
//! [`crate::io::DrsIo::pick`] draws. A [`DaemonJournal`] captures exactly
//! that — nothing more — so a fresh daemon driven through the journal by
//! the replay backend (`drs_io::replay`) must reproduce the original
//! run's metrics, event log, and route table byte-for-byte. Any
//! divergence means the daemon read state the trait does not declare,
//! which is precisely what the golden-replay suite exists to catch.
//!
//! Recording is enabled per daemon with
//! [`crate::config::DrsConfig::record_journal`] and costs one `Vec` push
//! per handler invocation; it is off by default.

use serde::{Deserialize, Serialize};

use crate::ids::{NetId, NodeId};
use crate::messages::DrsMsg;
use crate::time::SimTime;

/// One daemon entry-point invocation, minus its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DaemonInput {
    /// `handle_start`: the daemon booted on a host with `planes` planes.
    Start {
        /// Plane count the backend reported at boot.
        planes: u8,
    },
    /// `handle_timer`: a previously armed timer fired.
    Timer {
        /// The opaque token the daemon armed the timer with.
        token: u64,
    },
    /// `handle_echo_reply`: an ICMP echo reply arrived.
    EchoReply {
        /// Replying peer.
        from: NodeId,
        /// Plane the reply arrived on.
        net: NetId,
        /// ICMP identifier.
        id: u32,
        /// ICMP sequence number.
        seq: u32,
    },
    /// `handle_control`: a DRS control message arrived.
    Control {
        /// Sending peer.
        from: NodeId,
        /// Plane the message arrived on.
        net: NetId,
        /// The message itself.
        msg: DrsMsg,
    },
}

/// One journal entry: an input and the time the backend reported for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// What `DrsIo::now()` returned throughout the handler call.
    pub at: SimTime,
    /// The entry point and its arguments.
    pub input: DaemonInput,
}

/// The complete recorded input history of one daemon.
///
/// `records` holds every entry-point invocation in arrival order;
/// `picks` holds the result of every [`crate::io::DrsIo::pick`] draw in
/// draw order (non-empty only under
/// [`crate::config::GatewayPolicy::Random`]). Together they are
/// sufficient to re-drive the daemon: replay walks `records` front to
/// back and hands back `picks` front to back.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonJournal {
    /// Entry-point invocations in arrival order.
    pub records: Vec<JournalRecord>,
    /// `pick` results in draw order.
    pub picks: Vec<usize>,
}

impl DaemonJournal {
    /// Appends one entry-point invocation.
    pub fn push(&mut self, at: SimTime, input: DaemonInput) {
        self.records.push(JournalRecord { at, input });
    }

    /// Appends one `pick` draw result.
    pub fn push_pick(&mut self, i: usize) {
        self.picks.push(i);
    }

    /// Number of recorded entry-point invocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.picks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_accumulates_in_order() {
        let mut j = DaemonJournal::default();
        assert!(j.is_empty());
        j.push(SimTime(5), DaemonInput::Start { planes: 2 });
        j.push(SimTime(9), DaemonInput::Timer { token: 0xAB });
        j.push_pick(3);
        assert_eq!(j.len(), 2);
        assert!(!j.is_empty());
        assert_eq!(j.records[0].at, SimTime(5));
        assert_eq!(
            j.records[1].input,
            DaemonInput::Timer { token: 0xAB }
        );
        assert_eq!(j.picks, vec![3]);
    }

    #[test]
    fn inputs_compare_structurally() {
        let a = DaemonInput::EchoReply {
            from: NodeId(3),
            net: NetId::A,
            id: 7,
            seq: 21,
        };
        let b = DaemonInput::Control {
            from: NodeId(3),
            net: NetId::A,
            msg: DrsMsg::RouteOffer {
                target: NodeId(1),
                req_id: 4,
            },
        };
        assert_ne!(a, b);
        assert_eq!(a, a);
    }
}
