//! Identifier newtypes for the simulated cluster.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a server host in the cluster (`0..n`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The host index as a `usize` (for indexing host tables).
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One of the cluster's `K ≥ 2` redundant network planes.
///
/// The paper's deployed cluster is exactly two non-meshed backplanes; this
/// used to be a two-variant enum. It is now a dense plane index so a
/// scenario can carry any redundancy degree `K` (see
/// [`crate::scenario::ClusterSpec::planes`]), with the paper's networks as
/// the named constants [`NetId::A`] (plane 0, the primary) and [`NetId::B`]
/// (plane 1). Plane order is meaningful everywhere: default routes start on
/// the primary, and failover walks planes in ascending index order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u8);

impl NetId {
    /// The primary network plane (all default routes start here).
    pub const A: NetId = NetId(0);

    /// The paper's redundant network: plane 1.
    pub const B: NetId = NetId(1);

    /// The planes of a `K`-plane cluster, primary first.
    pub fn planes(k: u8) -> impl Iterator<Item = NetId> {
        (0..k).map(NetId)
    }

    /// Dense index (A = 0, B = 1, …) for vector-backed per-plane state.
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`NetId::idx`].
    ///
    /// # Panics
    /// Panics if `i` exceeds the `u8` plane-index range.
    #[must_use]
    pub fn from_idx(i: usize) -> NetId {
        assert!(i <= u8::MAX as usize, "network index {i} out of range");
        NetId(i as u8)
    }
}

impl fmt::Debug for NetId {
    /// Single-letter plane names (`A`, `B`, `C`, …) so debug output — and
    /// the committed trace artifacts that embed `{:?}` of fault components
    /// — keeps the paper's two-network spelling at K = 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0) as char)
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 26 {
            write!(f, "net{}", (b'A' + self.0) as char)
        } else {
            write!(f, "net{}", self.0)
        }
    }
}

/// Identifier of one application-level flow (one request/response exchange).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_planes_are_the_first_two() {
        assert_eq!(NetId::A, NetId(0));
        assert_eq!(NetId::B, NetId(1));
        assert!(NetId::A < NetId::B);
    }

    #[test]
    fn planes_iterates_in_ascending_order() {
        let four: Vec<NetId> = NetId::planes(4).collect();
        assert_eq!(four, vec![NetId(0), NetId(1), NetId(2), NetId(3)]);
        assert_eq!(
            NetId::planes(2).collect::<Vec<_>>(),
            vec![NetId::A, NetId::B]
        );
        assert_eq!(NetId::planes(0).count(), 0);
    }

    #[test]
    fn net_idx_roundtrip() {
        for net in NetId::planes(8) {
            assert_eq!(NetId::from_idx(net.idx()), net);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_net_idx_panics() {
        let _ = NetId::from_idx(256);
    }

    #[test]
    fn debug_keeps_the_paper_letters() {
        assert_eq!(format!("{:?}", NetId::A), "A");
        assert_eq!(format!("{:?}", NetId::B), "B");
        assert_eq!(format!("{:?}", NetId(2)), "C");
        assert_eq!(format!("{:?}", NetId(25)), "Z");
        assert_eq!(format!("{:?}", NetId(26)), "P26");
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NetId::A.to_string(), "netA");
        assert_eq!(NetId::B.to_string(), "netB");
        assert_eq!(NetId(2).to_string(), "netC");
        assert_eq!(NetId(200).to_string(), "net200");
        assert_eq!(FlowId(9).to_string(), "flow9");
    }
}
