//! Phase 1 of the DRS run process: the per-peer link state table.
//!
//! For every monitored peer the daemon tracks one link per network plane
//! (the paper's two; `K` in general), each either `Up` or `Down`. Probes
//! that time out accumulate
//! *consecutive misses*; crossing the configured threshold flips the link
//! to `Down`. Any answered probe resets the count and flips it back `Up`.
//! This module is pure state-machine bookkeeping; the daemon drives it
//! from probe timers and echo replies.

use serde::{Deserialize, Serialize};

use crate::ids::{NetId, NodeId};
use crate::time::SimTime;

/// The daemon's belief about one `(peer, network)` link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkState {
    /// Probes are being answered.
    Up,
    /// `miss_threshold` consecutive probes went unanswered.
    Down,
}

/// Per-link bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkInfo {
    /// Current believed state.
    pub state: LinkState,
    /// Consecutive unanswered probes.
    pub misses: u32,
    /// Sequence number of the probe currently awaiting a reply, if any.
    pub pending_seq: Option<u32>,
    /// When the last reply was heard (`None` before the first).
    pub last_seen: Option<SimTime>,
}

impl Default for LinkInfo {
    fn default() -> Self {
        LinkInfo {
            state: LinkState::Up, // optimistic start, as deployed
            misses: 0,
            pending_seq: None,
            last_seen: None,
        }
    }
}

/// What a probe result did to the link state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// The link just flipped `Up → Down`.
    WentDown,
    /// The link just flipped `Down → Up`.
    WentUp,
}

/// The full link-state table of one daemon: `(peer, net) → LinkInfo`.
#[derive(Debug, Clone)]
pub struct PeerTable {
    owner: NodeId,
    n: usize,
    planes: u8,
    links: Vec<Vec<LinkInfo>>,
}

impl PeerTable {
    /// A table for daemon `owner` monitoring all other hosts of an
    /// `n`-host, `planes`-plane cluster.
    ///
    /// # Panics
    /// Panics if `planes < 2` — DRS requires a redundant network.
    #[must_use]
    pub fn new(owner: NodeId, n: usize, planes: u8) -> Self {
        assert!(planes >= 2, "DRS monitors a redundant cluster (K >= 2)");
        PeerTable {
            owner,
            n,
            planes,
            links: vec![vec![LinkInfo::default(); planes as usize]; n],
        }
    }

    /// The number of network planes this table monitors.
    #[must_use]
    pub fn planes(&self) -> u8 {
        self.planes
    }

    /// The monitored peers, in id order (everyone but the owner).
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        let owner = self.owner;
        (0..self.n as u32).map(NodeId).filter(move |&p| p != owner)
    }

    /// Number of monitored peers.
    #[must_use]
    pub fn peer_count(&self) -> usize {
        self.n - 1
    }

    /// Link bookkeeping for `(peer, net)`.
    ///
    /// # Panics
    /// Panics if `peer` is the owner or out of range.
    #[must_use]
    pub fn link(&self, peer: NodeId, net: NetId) -> &LinkInfo {
        assert_ne!(peer, self.owner, "no link to self");
        &self.links[peer.idx()][net.idx()]
    }

    fn link_mut(&mut self, peer: NodeId, net: NetId) -> &mut LinkInfo {
        assert_ne!(peer, self.owner, "no link to self");
        &mut self.links[peer.idx()][net.idx()]
    }

    /// Convenience: the believed state of `(peer, net)`.
    #[must_use]
    pub fn state(&self, peer: NodeId, net: NetId) -> LinkState {
        self.link(peer, net).state
    }

    /// Whether every plane's link to `peer` is believed down.
    #[must_use]
    pub fn peer_unreachable_direct(&self, peer: NodeId) -> bool {
        NetId::planes(self.planes).all(|net| self.state(peer, net) == LinkState::Down)
    }

    /// The lowest-numbered plane whose link to `peer` is believed up —
    /// the "next healthy plane" a failover moves to. `None` when the peer
    /// is directly unreachable on every plane.
    #[must_use]
    pub fn first_up(&self, peer: NodeId) -> Option<NetId> {
        NetId::planes(self.planes).find(|&net| self.state(peer, net) == LinkState::Up)
    }

    /// Records that a probe with `seq` was sent on `(peer, net)`.
    pub fn probe_sent(&mut self, peer: NodeId, net: NetId, seq: u32) {
        self.link_mut(peer, net).pending_seq = Some(seq);
    }

    /// Processes an echo reply. Replies that match no pending probe
    /// (stale or duplicate) still prove liveness and are treated as
    /// successes — ICMP is idempotent evidence.
    pub fn reply_received(&mut self, peer: NodeId, net: NetId, at: SimTime) -> Transition {
        let link = self.link_mut(peer, net);
        link.pending_seq = None;
        link.misses = 0;
        link.last_seen = Some(at);
        if link.state == LinkState::Down {
            link.state = LinkState::Up;
            Transition::WentUp
        } else {
            Transition::None
        }
    }

    /// Processes a probe timeout for `seq`. Returns the resulting
    /// transition; a timeout for anything but the currently pending probe
    /// is stale and ignored.
    pub fn probe_timed_out(
        &mut self,
        peer: NodeId,
        net: NetId,
        seq: u32,
        miss_threshold: u32,
    ) -> Transition {
        let link = self.link_mut(peer, net);
        if link.pending_seq != Some(seq) {
            return Transition::None; // answered in the meantime, or stale
        }
        link.pending_seq = None;
        link.misses += 1;
        if link.state == LinkState::Up && link.misses >= miss_threshold {
            link.state = LinkState::Down;
            Transition::WentDown
        } else {
            Transition::None
        }
    }

    /// Number of links currently believed down.
    #[must_use]
    pub fn down_count(&self) -> usize {
        self.peers()
            .map(|p| {
                NetId::planes(self.planes)
                    .filter(|&net| self.state(p, net) == LinkState::Down)
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PeerTable {
        PeerTable::new(NodeId(0), 4, 2)
    }

    #[test]
    fn starts_optimistic() {
        let t = table();
        assert_eq!(t.peer_count(), 3);
        for p in t.peers() {
            assert_eq!(t.state(p, NetId::A), LinkState::Up);
            assert_eq!(t.state(p, NetId::B), LinkState::Up);
        }
        assert_eq!(t.down_count(), 0);
    }

    #[test]
    fn peers_excludes_owner() {
        let t = PeerTable::new(NodeId(2), 4, 2);
        let peers: Vec<_> = t.peers().collect();
        assert_eq!(peers, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn threshold_misses_flip_down_once() {
        let mut t = table();
        t.probe_sent(NodeId(1), NetId::A, 1);
        assert_eq!(
            t.probe_timed_out(NodeId(1), NetId::A, 1, 2),
            Transition::None,
            "first miss below threshold"
        );
        t.probe_sent(NodeId(1), NetId::A, 2);
        assert_eq!(
            t.probe_timed_out(NodeId(1), NetId::A, 2, 2),
            Transition::WentDown
        );
        t.probe_sent(NodeId(1), NetId::A, 3);
        assert_eq!(
            t.probe_timed_out(NodeId(1), NetId::A, 3, 2),
            Transition::None,
            "already down"
        );
        assert_eq!(t.down_count(), 1);
    }

    #[test]
    fn reply_resets_miss_count() {
        let mut t = table();
        t.probe_sent(NodeId(1), NetId::A, 1);
        let _ = t.probe_timed_out(NodeId(1), NetId::A, 1, 3);
        t.probe_sent(NodeId(1), NetId::A, 2);
        assert_eq!(
            t.reply_received(NodeId(1), NetId::A, SimTime(5)),
            Transition::None
        );
        assert_eq!(t.link(NodeId(1), NetId::A).misses, 0);
        assert_eq!(t.link(NodeId(1), NetId::A).last_seen, Some(SimTime(5)));
    }

    #[test]
    fn recovery_transition() {
        let mut t = table();
        for seq in 1..=2 {
            t.probe_sent(NodeId(3), NetId::B, seq);
            let _ = t.probe_timed_out(NodeId(3), NetId::B, seq, 2);
        }
        assert_eq!(t.state(NodeId(3), NetId::B), LinkState::Down);
        assert_eq!(
            t.reply_received(NodeId(3), NetId::B, SimTime(9)),
            Transition::WentUp
        );
        assert_eq!(t.state(NodeId(3), NetId::B), LinkState::Up);
    }

    #[test]
    fn stale_timeout_ignored() {
        let mut t = table();
        t.probe_sent(NodeId(1), NetId::A, 7);
        let _ = t.reply_received(NodeId(1), NetId::A, SimTime(1));
        // The timeout for seq 7 fires after the reply: no effect.
        assert_eq!(
            t.probe_timed_out(NodeId(1), NetId::A, 7, 1),
            Transition::None
        );
        assert_eq!(t.link(NodeId(1), NetId::A).misses, 0);
    }

    #[test]
    fn timeout_for_wrong_seq_ignored() {
        let mut t = table();
        t.probe_sent(NodeId(1), NetId::A, 8);
        assert_eq!(
            t.probe_timed_out(NodeId(1), NetId::A, 7, 1),
            Transition::None
        );
        assert_eq!(t.link(NodeId(1), NetId::A).pending_seq, Some(8));
    }

    #[test]
    fn unreachable_requires_both_nets_down() {
        let mut t = table();
        t.probe_sent(NodeId(1), NetId::A, 1);
        let _ = t.probe_timed_out(NodeId(1), NetId::A, 1, 1);
        assert!(!t.peer_unreachable_direct(NodeId(1)));
        assert_eq!(t.first_up(NodeId(1)), Some(NetId::B));
        t.probe_sent(NodeId(1), NetId::B, 2);
        let _ = t.probe_timed_out(NodeId(1), NetId::B, 2, 1);
        assert!(t.peer_unreachable_direct(NodeId(1)));
        assert_eq!(t.first_up(NodeId(1)), None);
    }

    #[test]
    fn three_plane_unreachable_requires_all_planes_down() {
        let mut t = PeerTable::new(NodeId(0), 3, 3);
        for (seq, net) in [(1, NetId::A), (2, NetId::B)] {
            t.probe_sent(NodeId(1), net, seq);
            let _ = t.probe_timed_out(NodeId(1), net, seq, 1);
        }
        assert!(!t.peer_unreachable_direct(NodeId(1)));
        assert_eq!(t.first_up(NodeId(1)), Some(NetId(2)), "next healthy plane");
        t.probe_sent(NodeId(1), NetId(2), 3);
        let _ = t.probe_timed_out(NodeId(1), NetId(2), 3, 1);
        assert!(t.peer_unreachable_direct(NodeId(1)));
        assert_eq!(t.down_count(), 3);
    }

    #[test]
    #[should_panic(expected = "K >= 2")]
    fn single_plane_table_rejected() {
        let _ = PeerTable::new(NodeId(0), 4, 1);
    }

    #[test]
    #[should_panic(expected = "no link to self")]
    fn self_link_rejected() {
        let t = table();
        let _ = t.link(NodeId(0), NetId::A);
    }
}
