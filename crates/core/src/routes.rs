//! Per-host route tables: the kernel state that routing daemons manipulate.
//!
//! The deployed DRS ran as a user-space demon that installed point-to-point
//! routes in the host kernel. This module models that kernel table: for
//! every destination host there is at most one route, either **direct** on
//! one of the two networks or **via a gateway** host reachable on one of
//! them.

use serde::{Deserialize, Serialize};

use crate::ids::{NetId, NodeId};

/// A route to one destination host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Route {
    /// Send directly to the destination's NIC on the given network.
    Direct(NetId),
    /// Send to `gateway`'s NIC on `net`; the gateway forwards from there.
    Via {
        /// The relaying host.
        gateway: NodeId,
        /// Network used for the first hop (us → gateway).
        net: NetId,
    },
}

impl Route {
    /// The L2 next hop `(node, net)` this route resolves to for a given
    /// destination.
    #[must_use]
    pub fn next_hop(self, dst: NodeId) -> (NodeId, NetId) {
        match self {
            Route::Direct(net) => (dst, net),
            Route::Via { gateway, net } => (gateway, net),
        }
    }

    /// Whether this route relays through another host.
    #[must_use]
    pub fn is_indirect(self) -> bool {
        matches!(self, Route::Via { .. })
    }
}

/// The route table of one host: `dst → route`, dense over the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTable {
    owner: NodeId,
    routes: Vec<Option<Route>>,
}

impl RouteTable {
    /// A table for host `owner` in an `n`-host cluster, with the deployed
    /// default: a direct route on the primary network to every other host.
    #[must_use]
    pub fn new_default(owner: NodeId, n: usize) -> Self {
        let mut routes = vec![Some(Route::Direct(NetId::A)); n];
        routes[owner.idx()] = None; // no route to self
        RouteTable { owner, routes }
    }

    /// A table with no routes at all (used by baselines that must first
    /// discover the topology).
    #[must_use]
    pub fn new_empty(owner: NodeId, n: usize) -> Self {
        RouteTable {
            owner,
            routes: vec![None; n],
        }
    }

    /// The current route to `dst`, if any.
    #[must_use]
    pub fn get(&self, dst: NodeId) -> Option<Route> {
        self.routes.get(dst.idx()).copied().flatten()
    }

    /// Installs (or replaces) the route to `dst`.
    ///
    /// # Panics
    /// Panics when installing a route to oneself, or a `Via` route whose
    /// gateway is the destination or the owner — malformed entries that a
    /// real kernel would reject and that could otherwise loop.
    pub fn set(&mut self, dst: NodeId, route: Route) {
        assert_ne!(dst, self.owner, "route to self is meaningless");
        if let Route::Via { gateway, .. } = route {
            assert_ne!(gateway, dst, "gateway must differ from destination");
            assert_ne!(gateway, self.owner, "gateway must differ from owner");
        }
        self.routes[dst.idx()] = Some(route);
    }

    /// Removes the route to `dst`, returning the old entry.
    pub fn remove(&mut self, dst: NodeId) -> Option<Route> {
        self.routes[dst.idx()].take()
    }

    /// Iterates `(dst, route)` over installed routes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Route)> + '_ {
        self.routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|r| (NodeId(i as u32), r)))
    }

    /// Number of installed routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.iter().flatten().count()
    }

    /// Whether no route is installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of indirect (via-gateway) routes — a health indicator used by
    /// experiments.
    #[must_use]
    pub fn indirect_count(&self) -> usize {
        self.routes
            .iter()
            .flatten()
            .filter(|r| r.is_indirect())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_is_all_direct_primary() {
        let t = RouteTable::new_default(NodeId(1), 4);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(NodeId(0)), Some(Route::Direct(NetId::A)));
        assert_eq!(t.get(NodeId(1)), None, "no route to self");
        assert_eq!(t.indirect_count(), 0);
    }

    #[test]
    fn set_get_remove_roundtrip() {
        let mut t = RouteTable::new_empty(NodeId(0), 4);
        assert!(t.is_empty());
        t.set(NodeId(2), Route::Direct(NetId::B));
        t.set(
            NodeId(3),
            Route::Via {
                gateway: NodeId(1),
                net: NetId::A,
            },
        );
        assert_eq!(t.get(NodeId(2)), Some(Route::Direct(NetId::B)));
        assert_eq!(t.indirect_count(), 1);
        assert_eq!(t.remove(NodeId(2)), Some(Route::Direct(NetId::B)));
        assert_eq!(t.get(NodeId(2)), None);
    }

    #[test]
    fn next_hop_resolution() {
        let dst = NodeId(5);
        assert_eq!(Route::Direct(NetId::B).next_hop(dst), (dst, NetId::B));
        let via = Route::Via {
            gateway: NodeId(2),
            net: NetId::A,
        };
        assert_eq!(via.next_hop(dst), (NodeId(2), NetId::A));
    }

    #[test]
    #[should_panic(expected = "route to self")]
    fn self_route_rejected() {
        let mut t = RouteTable::new_empty(NodeId(0), 4);
        t.set(NodeId(0), Route::Direct(NetId::A));
    }

    #[test]
    #[should_panic(expected = "gateway must differ from destination")]
    fn degenerate_gateway_rejected() {
        let mut t = RouteTable::new_empty(NodeId(0), 4);
        t.set(
            NodeId(2),
            Route::Via {
                gateway: NodeId(2),
                net: NetId::A,
            },
        );
    }

    #[test]
    fn iter_lists_installed_routes() {
        let t = RouteTable::new_default(NodeId(0), 3);
        let got: Vec<_> = t.iter().collect();
        assert_eq!(
            got,
            vec![
                (NodeId(1), Route::Direct(NetId::A)),
                (NodeId(2), Route::Direct(NetId::A)),
            ]
        );
    }
}
