//! The transport/timer boundary between the DRS daemon and the world.
//!
//! The daemon is a pure state machine: every handler takes
//! `&mut impl DrsIo` and the *same daemon bytes* run against any backend
//! that implements this trait. Three backends exist:
//!
//! * **DES** — `drs_sim` implements `DrsIo` for its `Ctx`, so the daemon
//!   runs inside the deterministic discrete-event kernel (single-threaded
//!   `World` or the sharded `ShardedWorld`, which merge byte-identically).
//! * **Live UDP** — `drs_io::live` runs the daemon over real loopback
//!   sockets, one socket per plane, with wall-clock timers.
//! * **Replay** — `drs_io::replay` feeds a recorded input journal (see
//!   [`crate::journal`]) back through a fresh daemon and checks that its
//!   decisions byte-match the original run.
//!
//! # Determinism contract
//!
//! Handlers are re-entered only through the four daemon entry points
//! (`handle_start` / `handle_timer` / `handle_echo_reply` /
//! `handle_control`), and the daemon's state after a handler returns is a
//! pure function of its state before, the handler's arguments, and the
//! values the backend returned from [`DrsIo::now`] and [`DrsIo::pick`]
//! during the call. Each backend upholds its side as follows:
//!
//! * `now()` must be constant for the duration of one handler call
//!   (virtual time in the DES, the entry timestamp in the live backend,
//!   the journaled timestamp in replay) and non-decreasing across calls.
//! * `pick(n)` is the daemon's only source of randomness (used by the
//!   `GatewayPolicy::Random` offer choice). The DES backend draws from
//!   the per-host seeded stream — identical draws to the pre-trait
//!   daemon; the live backend draws from a locally seeded generator; the
//!   replay backend pops the journaled draw.
//! * `set_timer` may only fire *after* the handler returns; timers cannot
//!   be cancelled. Stale timers are the daemon's own problem — every
//!   token carries enough payload (probe seq, request id) for the daemon
//!   to recognize and ignore an out-of-date firing. This deliberate
//!   absence of `cancel_timer` keeps every backend's timer plumbing a
//!   plain monotonic queue.
//! * The `flight_*` hooks may drop records (ring eviction, recorder off —
//!   they return `None`) but must never influence control flow: the
//!   daemon behaves identically whether or not anything is recorded.
//! * Route reads ([`DrsIo::route`] / [`DrsIo::routes`]) must observe
//!   exactly the installs this daemon performed via [`DrsIo::set_route`]:
//!   the route table is per-host state no other writer touches.

use drs_obs::flight::{EventRef, TraceKind};

use crate::ids::{NetId, NodeId};
use crate::messages::DrsMsg;
use crate::routes::{Route, RouteTable};
use crate::stats::ProbeObs;
use crate::time::{SimDuration, SimTime};

/// Everything the DRS daemon asks of its environment: frames out, timers
/// armed, the clock, the kernel route table, and observability sinks.
///
/// See the [module docs](self) for the determinism contract each backend
/// must uphold.
pub trait DrsIo {
    /// The current time. Constant within one handler call.
    fn now(&self) -> SimTime;

    /// Number of redundant network planes (`K ≥ 2`).
    fn planes(&self) -> u8;

    /// Uniform draw from `0..n` — the daemon's only randomness source.
    ///
    /// # Panics
    /// Implementations may panic if `n == 0`; the daemon never asks.
    fn pick(&mut self, n: usize) -> usize;

    /// Sends an ICMP echo request to `dst` on `net`, tagged with the
    /// flight record that explains it (rides on the frame so loss sites
    /// can blame the send).
    fn send_echo_traced(
        &mut self,
        net: NetId,
        dst: NodeId,
        id: u32,
        seq: u32,
        flight: Option<EventRef>,
    );

    /// Sends a control message to one peer on `net`.
    fn send_control(&mut self, net: NetId, dst: NodeId, msg: DrsMsg);

    /// Broadcasts a control message to every host on `net`.
    fn broadcast_control(&mut self, net: NetId, msg: DrsMsg);

    /// Arms a one-shot timer `delay` from now carrying `token`. Timers
    /// cannot be cancelled — see the module docs.
    fn set_timer(&mut self, delay: SimDuration, token: u64);

    /// Installs (or replaces) the route to `dst`.
    fn set_route(&mut self, dst: NodeId, route: Route);

    /// The current route to `dst`, if any.
    fn route(&self, dst: NodeId) -> Option<Route>;

    /// The whole kernel route table of this host.
    fn routes(&self) -> &RouteTable;

    /// The probe-path observability block this daemon records into.
    fn probe_obs_mut(&mut self) -> &mut ProbeObs;

    /// Notifies the session layer that a failover repair completed: the
    /// daemon installed a working replacement route to `dst` and closed
    /// the repair span it had opened when the failure was first
    /// observed. Backends without a session layer ignore it (default
    /// no-op); the DES backend forwards it to the fluid workload engine,
    /// which uses it to resume stalled sessions' accounting and to
    /// cross-check its interruption SLOs against the daemon's
    /// `reroute_complete` histogram — the notification fires exactly
    /// once per recorded `reroute_complete` sample. Like the `flight_*`
    /// hooks, it must never influence daemon behavior.
    fn notify_reroute(&mut self, _dst: NodeId) {}

    /// Appends a causal flight record; `None` when nothing was recorded
    /// (recorder off). Must not affect behavior.
    fn flight_record(
        &mut self,
        kind: TraceKind,
        plane: Option<NetId>,
        arg: u64,
        cause: Option<EventRef>,
    ) -> Option<EventRef>;

    /// Pins a flight record against ring eviction.
    fn flight_pin(&mut self, r: EventRef);

    /// Releases a previously pinned flight record.
    fn flight_release(&mut self, r: EventRef);
}
