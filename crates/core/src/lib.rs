//! The **Dynamic Routing System (DRS)**: the paper's proactive
//! fault-tolerant routing protocol for redundant-network server clusters
//! — the paper's two planes, or `K ≥ 2` in general (the backend reports
//! the plane count through [`DrsIo::planes`]).
//!
//! Every host runs one [`DrsDaemon`]. The daemon executes the two-phase
//! run process the paper describes:
//!
//! 1. **Monitor** ([`monitor`]): continuously probe every configured peer
//!    on *every* network plane with ICMP echo requests. A link
//!    `(peer, net)` is declared down after a configurable number of
//!    consecutive unanswered probes, and declared up again the moment a
//!    probe succeeds.
//! 2. **Repair** ([`daemon`]): when the link carrying the current route to
//!    a peer fails, immediately re-route — to the peer's NIC on the next
//!    healthy plane if one is up, and otherwise by broadcasting
//!    a route request so that any host with working links to both ends
//!    can offer itself as a one-hop gateway ([`messages`]).
//!
//! Because monitoring is continuous, failures are detected and repaired
//! in roughly one probe cycle — typically before the application's TCP
//! stand-in fires its first retransmission, which is the paper's headline
//! behaviour.
//!
//! The daemon is a pure state machine: every handler takes
//! `&mut impl `[`DrsIo`], the transport/timer boundary defined in
//! [`io`]. The same daemon bytes therefore run on the `drs_sim`
//! packet-level DES kernel (which implements [`DrsIo`] for its `Ctx`),
//! on real UDP sockets (`drs_io::live`), and against recorded traces
//! (`drs_io::replay`).
//!
//! # Quick start
//!
//! ```
//! use drs_core::{DrsConfig, DrsDaemon};
//! use drs_sim::{ClusterSpec, NetId, NodeId, SimDuration, SimTime, World};
//! use drs_sim::fault::{FaultPlan, SimComponent};
//!
//! // An 8-host cluster running DRS with default (1 s cycle) probing.
//! let spec = ClusterSpec::new(8).seed(42);
//! let cfg = DrsConfig::default();
//! let mut world = World::new(spec, |id| DrsDaemon::new(id, spec.n, cfg));
//!
//! // Kill the primary hub one second in.
//! world.schedule_faults(FaultPlan::new().fail_at(
//!     SimTime(1_000_000_000),
//!     SimComponent::Hub(NetId::A),
//! ));
//!
//! // Application traffic sent *after* the failure is still delivered:
//! // DRS has already moved every route to the redundant network.
//! let flow = world.send_app(SimTime(8_000_000_000), NodeId(0), NodeId(5), 512);
//! world.run_for(SimDuration::from_secs(20));
//! assert_eq!(world.app_stats().delivered, 1);
//! let _ = flow;
//! ```

pub mod config;
pub mod daemon;
pub mod frame;
pub mod ids;
pub mod io;
pub mod journal;
pub mod messages;
pub mod metrics;
pub mod monitor;
pub mod routes;
pub mod stats;
pub mod time;

pub use config::{DrsConfig, GatewayPolicy};
pub use daemon::DrsDaemon;
pub use frame::{Destination, Frame, FrameKind};
pub use ids::{NetId, NodeId};
pub use io::DrsIo;
pub use journal::{DaemonInput, DaemonJournal, JournalRecord};
pub use messages::DrsMsg;
pub use metrics::{DrsEvent, DrsEventKind, DrsMetrics, ProbeRecord};
pub use monitor::{LinkState, PeerTable};
pub use routes::{Route, RouteTable};
pub use stats::{LatencyHistogram, ProbeObs};
pub use time::{SimDuration, SimTime};
