//! Virtual time: integer nanoseconds since simulation start.
//!
//! Integer time makes the simulator exactly deterministic (no accumulated
//! floating-point drift in event ordering) and cheap to compare in the
//! event queue's hot path.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since simulation start, as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds, saturating at the representable maximum so an
    /// absurd scenario config cannot wrap virtual time in release builds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// From milliseconds (saturating).
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// From microseconds (saturating).
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// From nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From fractional seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    /// Panics on negative, NaN or out-of-range input.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0 && s < u64::MAX as f64 / 1e9,
            "invalid duration {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// The span in seconds as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Integer nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating multiplication by an integer factor.
    #[must_use]
    pub const fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Integer division by a count (e.g. spacing probes across a cycle).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub const fn div(self, k: u64) -> Self {
        SimDuration(self.0 / k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(t.since(SimTime(5_000_000_000)), SimDuration::ZERO);
        let mut u = t;
        u += SimDuration::from_secs(1);
        assert_eq!(u.as_secs_f64(), 3.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn strict_sub_panics_backwards() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn div_and_mul() {
        assert_eq!(
            SimDuration::from_secs(1).div(4),
            SimDuration::from_millis(250)
        );
        assert_eq!(
            SimDuration::from_millis(250).saturating_mul(4),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn rejects_negative_float() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn constructors_saturate_instead_of_wrapping() {
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration(u64::MAX));
        assert_eq!(SimDuration::from_millis(u64::MAX), SimDuration(u64::MAX));
        assert_eq!(SimDuration::from_micros(u64::MAX), SimDuration(u64::MAX));
        // Just under the overflow edge still multiplies exactly.
        let edge = u64::MAX / 1_000_000_000;
        assert_eq!(
            SimDuration::from_secs(edge),
            SimDuration(edge * 1_000_000_000)
        );
    }
}
