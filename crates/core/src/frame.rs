//! Frames: the unit of transmission on a simulated network segment.
//!
//! A frame models one Ethernet frame on one of the two networks. The kind
//! distinguishes kernel-level ICMP echo traffic, routing-daemon control
//! messages (generic over the protocol's message type `M`), and
//! application data segments carried by the reliable transport.

use drs_obs::flight::EventRef;
use serde::{Deserialize, Serialize};

use crate::ids::{FlowId, NetId, NodeId};

/// L2 destination of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Destination {
    /// Addressed to a single host's NIC on the segment.
    Node(NodeId),
    /// Broadcast to every live NIC on the segment (e.g. DRS route
    /// discovery).
    Broadcast,
}

/// Whether a data segment carries payload or acknowledges one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Payload segment travelling source → destination.
    Data,
    /// Acknowledgement travelling destination → source.
    Ack,
}

/// An application data segment (the transport's unit of retransmission).
///
/// `src`/`dst` are the *end-to-end* endpoints; the enclosing [`Frame`]
/// carries the L2 hop (which may be a gateway when the route is indirect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// Originating host.
    pub src: NodeId,
    /// Final destination host.
    pub dst: NodeId,
    /// Flow this segment belongs to.
    pub flow: FlowId,
    /// Sequence number within the flow.
    pub seq: u32,
    /// Payload or acknowledgement.
    pub kind: SegmentKind,
    /// Remaining hop budget; decremented at each forwarding host, the
    /// frame is dropped at zero (routing-loop backstop).
    pub ttl: u8,
    /// Payload size in bytes (used for serialization delay).
    pub payload_bytes: u32,
    /// Which transmission attempt this is (1 = first send). Receivers can
    /// tell retransmitted data apart — the analogue of a TCP receiver
    /// seeing an already-acknowledged sequence number again.
    pub attempt: u32,
}

/// What a frame carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameKind<M> {
    /// ICMP echo request (kernel answers without daemon involvement).
    EchoRequest {
        /// Prober-chosen identifier, returned verbatim in the reply.
        id: u32,
        /// Prober-chosen sequence number, returned verbatim.
        seq: u32,
    },
    /// ICMP echo reply.
    EchoReply {
        /// Identifier copied from the request.
        id: u32,
        /// Sequence copied from the request.
        seq: u32,
    },
    /// Routing-daemon control message (DRS, RIP, …).
    Control(M),
    /// Application data carried by the reliable transport.
    Data(Segment),
}

/// One frame in flight on one network segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame<M> {
    /// Transmitting host.
    pub src: NodeId,
    /// L2 destination on this segment.
    pub dst: Destination,
    /// Which of the two networks the frame is on.
    pub net: NetId,
    /// Contents.
    pub kind: FrameKind<M>,
    /// Total on-wire size in bytes, including all headers. Determines the
    /// serialization delay on the shared medium.
    pub wire_bytes: u32,
    /// Flight-recorder identity of the trace record that launched this
    /// frame (the probe's `ProbeSend`), carried so kernel loss sites and
    /// the echo auto-reply can name their cause. Pure metadata: never
    /// read by scheduling, routing or accounting, so traced and
    /// untraced runs dispatch identical events.
    pub flight: Option<EventRef>,
}

impl<M> Frame<M> {
    /// True for ICMP echo traffic (probe overhead accounting).
    #[must_use]
    pub fn is_probe(&self) -> bool {
        matches!(
            self.kind,
            FrameKind::EchoRequest { .. } | FrameKind::EchoReply { .. }
        )
    }

    /// True for routing-daemon control messages.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self.kind, FrameKind::Control(_))
    }

    /// True for application data/ack segments.
    #[must_use]
    pub fn is_data(&self) -> bool {
        matches!(self.kind, FrameKind::Data(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameKind<u8>) -> Frame<u8> {
        Frame {
            src: NodeId(0),
            dst: Destination::Node(NodeId(1)),
            net: NetId::A,
            kind,
            wire_bytes: 74,
            flight: None,
        }
    }

    #[test]
    fn classification() {
        assert!(frame(FrameKind::EchoRequest { id: 1, seq: 2 }).is_probe());
        assert!(frame(FrameKind::EchoReply { id: 1, seq: 2 }).is_probe());
        assert!(frame(FrameKind::Control(9)).is_control());
        let seg = Segment {
            src: NodeId(0),
            dst: NodeId(1),
            flow: FlowId(1),
            seq: 0,
            kind: SegmentKind::Data,
            ttl: 8,
            payload_bytes: 512,
            attempt: 1,
        };
        assert!(frame(FrameKind::Data(seg)).is_data());
        assert!(!frame(FrameKind::Data(seg)).is_probe());
    }
}
