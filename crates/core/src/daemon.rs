//! Phase 2 of the DRS run process: the daemon state machine.
//!
//! The daemon loops through the cycle the paper describes — *"monitoring
//! communication links, answering requests, and fixing problems as they
//! occur, for the life of the server cluster"*:
//!
//! * **monitoring** — staggered ICMP probes of every `(peer, net)` pair
//!   across all `K` network planes, one full sweep per probe interval;
//! * **answering requests** — when another daemon broadcasts a
//!   [`DrsMsg::RouteRequest`], offer to act as gateway if (and only if)
//!   this host has a live *direct* route to the target (the directness
//!   requirement keeps relays one hop deep and is the protocol's routing
//!   loop avoidance, backstopped by the stack's TTL);
//! * **fixing problems** — when the link under a kernel route fails,
//!   repair it: first to the peer's NIC on the next healthy plane, and if
//!   every direct link is gone, through broadcast gateway discovery.
//!   When a direct link recovers, revert to it.
//!
//! All repair actions are driven by probe state transitions, never by
//! application traffic — that is what makes DRS *proactive*: by the time
//! an application sends, the route table has already been fixed.

use rand::Rng;

use drs_obs::flight::{EventRef, TraceKind};
use drs_obs::Span;
use drs_sim::ids::{NetId, NodeId};
use drs_sim::routes::Route;
use drs_sim::time::{SimDuration, SimTime};
use drs_sim::world::{Ctx, Protocol};

use crate::config::{DrsConfig, GatewayPolicy};
use crate::messages::DrsMsg;
use crate::metrics::{DrsEventKind, DrsMetrics, ProbeRecord};
use crate::monitor::{LinkState, PeerTable, Transition};

/// ICMP identifier used by all DRS probes.
const ECHO_ID: u32 = 0x0D25;

// Timer token layout: [kind:8][peer:24][net:8][payload:24]
const KIND_PROBE: u64 = 1;
const KIND_TIMEOUT: u64 = 2;
const KIND_OFFER_WINDOW: u64 = 3;
const KIND_CYCLE: u64 = 4;
const KIND_CYCLE_TIMEOUT: u64 = 5;

fn token(kind: u64, peer: NodeId, net: NetId, payload: u64) -> u64 {
    debug_assert!(payload < (1 << 24));
    kind << 56 | (peer.0 as u64) << 32 | (net.idx() as u64) << 24 | payload
}

fn untoken(t: u64) -> (u64, NodeId, NetId, u64) {
    (
        t >> 56,
        NodeId((t >> 32 & 0xFF_FFFF) as u32),
        NetId::from_idx((t >> 24 & 0xFF) as usize),
        t & 0xFF_FFFF,
    )
}

#[derive(Debug, Clone)]
struct DiscoveryRound {
    req_id: u64,
    offers: Vec<(NodeId, NetId)>,
    decided: bool,
}

/// One host's DRS routing demon.
///
/// All per-peer and per-`(peer, net)` state lives in dense vectors
/// indexed by node id (and plane) — ids are small and sequential, so
/// dense indexing is both the fastest lookup and, unlike the former
/// `std::collections::HashMap`s, free of any SipHash seeding that could
/// leak into iteration order.
#[derive(Debug, Clone)]
pub struct DrsDaemon {
    id: NodeId,
    n: usize,
    cfg: DrsConfig,
    peers: PeerTable,
    next_seq: u32,
    next_req: u64,
    /// Active discovery round per target, indexed by [`NodeId::idx`].
    discovery: Vec<Option<DiscoveryRound>>,
    /// Last discovery start per target, indexed by [`NodeId::idx`].
    last_discovery: Vec<Option<SimTime>>,
    /// Counters and the timestamped event log.
    pub metrics: DrsMetrics,
    // Observability spans, all clocked on simulation time. Recording
    // into them never schedules events or draws randomness, so the
    // instrumented daemon is event-for-event identical to PR-2's.
    /// Open span per monitored `(peer, net)` pair ([`Self::pair_idx`]):
    /// the in-flight monitor cycle. Closed into `probe_gap`/`probe_rtt`.
    probe_spans: Vec<Option<Span>>,
    /// Last time each `(peer, net)` pair answered a probe — the baseline
    /// for failure-detection latency.
    last_ok: Vec<Option<SimTime>>,
    /// Open repair span per destination ([`NodeId::idx`]): failure
    /// observed → new route installed. Closed into `reroute_complete`.
    pending_reroute: Vec<Option<Span>>,
    /// Probes sent by the current batched monitor cycle, awaiting the
    /// cycle's single timeout sweep. Recycled between cycles: the batched
    /// probe path performs no steady-state heap allocation.
    cycle_probes: Vec<(NodeId, NetId, u32)>,
    /// Batched-mode down-link backoff: cycles left to skip per pair.
    probe_skip: Vec<u64>,
    // Flight-recorder identities (all `None` while the recorder is off;
    // recording never changes what the daemon *does*, only what it can
    // explain afterwards).
    /// Last `ProbeSend` record per `(peer, net)` pair.
    probe_send_ref: Vec<Option<EventRef>>,
    /// Causal-chain tail per pair: the previous probe send, or the last
    /// good reply — so a chain walks send → … → send → last-good-recv.
    probe_chain_ref: Vec<Option<EventRef>>,
    /// Open `FailoverDecision` per destination, consumed by the
    /// `RerouteComplete` that closes the repair span.
    pending_reroute_ref: Vec<Option<EventRef>>,
    /// Pinned `LinkDown` chain head per pair, released on link-up.
    down_ref: Vec<Option<EventRef>>,
}

impl DrsDaemon {
    /// A daemon for host `id` in an `n`-host cluster.
    ///
    /// The link table is sized for the paper's two planes here and
    /// re-sized to the scenario's actual redundancy degree in
    /// [`Protocol::on_start`], where the daemon first sees the spec.
    ///
    /// # Panics
    /// Panics if the cluster has fewer than two hosts or more than the
    /// 2²⁴ the timer-token encoding supports.
    #[must_use]
    pub fn new(id: NodeId, n: usize, cfg: DrsConfig) -> Self {
        assert!(n >= 2, "DRS monitors peers; a cluster needs two hosts");
        assert!(n < (1 << 24), "cluster size exceeds token encoding");
        DrsDaemon {
            id,
            n,
            cfg,
            peers: PeerTable::new(id, n, 2),
            next_seq: 0,
            next_req: 0,
            discovery: vec![None; n],
            last_discovery: vec![None; n],
            metrics: DrsMetrics::default(),
            probe_spans: vec![None; n * 2],
            last_ok: vec![None; n * 2],
            pending_reroute: vec![None; n],
            cycle_probes: Vec::new(),
            probe_skip: vec![0; n * 2],
            probe_send_ref: vec![None; n * 2],
            probe_chain_ref: vec![None; n * 2],
            pending_reroute_ref: vec![None; n],
            down_ref: vec![None; n * 2],
        }
    }

    /// Dense index of a `(peer, net)` pair into the per-pair vectors.
    fn pair_idx(&self, peer: NodeId, net: NetId) -> usize {
        peer.idx() * self.peers.planes() as usize + net.idx()
    }

    /// The daemon's view of its links.
    #[must_use]
    pub fn peer_table(&self) -> &PeerTable {
        &self.peers
    }

    /// The daemon's configuration.
    #[must_use]
    pub fn config(&self) -> &DrsConfig {
        &self.cfg
    }

    fn alloc_seq(&mut self) -> u32 {
        self.next_seq = (self.next_seq + 1) & 0xFF_FFFF;
        self.next_seq
    }

    /// Transmits one monitor probe to `(peer, net)`: sequence allocation,
    /// pending-probe bookkeeping, probe-gap span rotation and the echo
    /// itself — everything except timeout arming, which differs between
    /// the per-pair and batched monitor drivers. Returns the ICMP seq.
    fn send_probe(&mut self, ctx: &mut Ctx<'_, DrsMsg>, peer: NodeId, net: NetId) -> u32 {
        let seq = self.alloc_seq();
        self.peers.probe_sent(peer, net, seq);
        self.metrics.probes_sent += 1;
        // One monitor-cycle span per (peer, net): opening the new one
        // closes the old one into the probe-gap histogram — the realized
        // sweep period, stagger and backoff included.
        let span = Span::begin(ctx.now().0);
        let idx = self.pair_idx(peer, net);
        if let Some(prev) = self.probe_spans[idx].replace(span) {
            let gap = SimDuration(prev.elapsed_ns(span.start_ns()));
            ctx.probe_obs_mut().probe_gap.record(gap);
        }
        if self.cfg.record_probe_log {
            self.metrics.probe_log.push(ProbeRecord {
                at: ctx.now(),
                peer,
                net,
                seq,
            });
        }
        // Flight: this send's cause is the pair's chain tail (the
        // previous send, or the last good reply), and the send ref rides
        // on the frame so kernel loss sites can blame it.
        let sref = ctx.flight_record(
            TraceKind::ProbeSend,
            Some(net),
            u64::from(peer.0) << 32 | u64::from(seq),
            self.probe_chain_ref[idx],
        );
        if sref.is_some() {
            self.probe_send_ref[idx] = sref;
            self.probe_chain_ref[idx] = sref;
        }
        ctx.send_echo_traced(net, peer, ECHO_ID, seq, sref);
        seq
    }

    /// One batched monitor cycle: fan out every due `(peer, net)` probe
    /// inline — peers in id order, planes in order within each peer,
    /// exactly the per-pair timers' firing order — then arm a single
    /// timeout sweep and the next cycle. Two queue entries per cycle per
    /// daemon, against `2·K·(N-1)` for the per-pair driver.
    fn run_monitor_cycle(&mut self, ctx: &mut Ctx<'_, DrsMsg>) {
        self.cycle_probes.clear();
        let planes = self.peers.planes();
        for p in 0..self.n as u32 {
            let peer = NodeId(p);
            if peer == self.id {
                continue;
            }
            for net in NetId::planes(planes) {
                let idx = self.pair_idx(peer, net);
                if self.probe_skip[idx] > 0 {
                    // Down-link backoff: the per-pair driver stretches the
                    // re-arm delay; the batched driver skips whole cycles.
                    self.probe_skip[idx] -= 1;
                    continue;
                }
                let seq = self.send_probe(ctx, peer, net);
                self.cycle_probes.push((peer, net, seq));
                if self.peers.state(peer, net) == LinkState::Down {
                    self.probe_skip[idx] = self.cfg.down_probe_backoff - 1;
                }
                // Same retry hook as the per-pair driver: once per cycle
                // per peer, keyed to an actually-sent plane-A probe.
                if net == NetId::A && self.peers.peer_unreachable_direct(peer) {
                    self.start_discovery(ctx, peer);
                }
            }
        }
        ctx.set_timer(
            self.cfg.probe_timeout,
            token(KIND_CYCLE_TIMEOUT, NodeId(0), NetId::A, 0),
        );
        ctx.set_timer(
            self.cfg.probe_interval,
            token(KIND_CYCLE, NodeId(0), NetId::A, 0),
        );
    }

    /// The batched cycle's single timeout sweep, covering every probe the
    /// cycle sent in the same pair order. Sound because the config
    /// guarantees `probe_timeout < probe_interval`: the sweep always
    /// fires before the next fan-out reuses the buffer.
    fn sweep_cycle_timeouts(&mut self, ctx: &mut Ctx<'_, DrsMsg>) {
        let probes = std::mem::take(&mut self.cycle_probes);
        for &(peer, net, seq) in &probes {
            self.metrics.timeouts += 1;
            let transition = self
                .peers
                .probe_timed_out(peer, net, seq, self.cfg.miss_threshold);
            if transition == Transition::WentDown {
                let sweep = self.record_timeout_sweep(ctx, peer, net);
                self.handle_link_down(ctx, peer, net, sweep);
            }
        }
        self.cycle_probes = probes;
    }

    /// Flight: the sweep record that declared `(peer, net)` overdue,
    /// caused by the probe send it gave up on.
    fn record_timeout_sweep(
        &mut self,
        ctx: &mut Ctx<'_, DrsMsg>,
        peer: NodeId,
        net: NetId,
    ) -> Option<EventRef> {
        let cause = self.probe_send_ref[self.pair_idx(peer, net)];
        ctx.flight_record(TraceKind::TimeoutSweep, Some(net), u64::from(peer.0), cause)
    }

    /// The direct network this daemon would prefer for `peer` right now,
    /// given its link beliefs: the lowest-numbered plane whose link is up
    /// — primary first, then the next healthy plane in order.
    fn best_direct(&self, peer: NodeId) -> Option<NetId> {
        self.peers.first_up(peer)
    }

    fn install(&mut self, ctx: &mut Ctx<'_, DrsMsg>, dst: NodeId, route: Route) {
        if ctx.route(dst) == Some(route) {
            return;
        }
        ctx.set_route(dst, route);
        self.metrics.route_changes += 1;
        self.metrics
            .log(ctx.now(), DrsEventKind::RouteChanged { dst, route });
        // A repair span for this destination closes on the first actual
        // route change after the failure — if discovery had to wait for
        // the peer to recover, the recorded latency honestly covers the
        // whole outage.
        if let Some(span) = self.pending_reroute[dst.idx()].take() {
            let elapsed = SimDuration(span.elapsed_ns(ctx.now().0));
            ctx.probe_obs_mut().reroute_complete.record(elapsed);
            // Flight: exactly one completion per closed repair span, so
            // these records mirror the reroute_complete histogram 1:1.
            ctx.flight_record(
                TraceKind::RerouteComplete,
                None,
                elapsed.as_nanos(),
                self.pending_reroute_ref[dst.idx()].take(),
            );
        }
    }

    /// Repairs the route to `dst` after its current path broke: redundant
    /// direct link first, gateway discovery second. `cause` is the
    /// link-down record that forced the repair.
    fn repair_route(&mut self, ctx: &mut Ctx<'_, DrsMsg>, dst: NodeId, cause: Option<EventRef>) {
        let now = ctx.now();
        let newly_opened = self.pending_reroute[dst.idx()].is_none();
        self.pending_reroute[dst.idx()].get_or_insert_with(|| Span::begin(now.0));
        let direct = self.best_direct(dst);
        if newly_opened {
            // Flight: one decision per repair span, at the instant it
            // opens — mode says which repair path the daemon committed to.
            let mode = u64::from(direct.is_none());
            self.pending_reroute_ref[dst.idx()] = ctx.flight_record(
                TraceKind::FailoverDecision,
                None,
                u64::from(dst.0) << 1 | mode,
                cause,
            );
        }
        if let Some(net) = direct {
            let new = Route::Direct(net);
            if ctx.route(dst) != Some(new) {
                self.metrics.direct_failovers += 1;
                self.install(ctx, dst, new);
            }
        } else {
            self.start_discovery(ctx, dst);
        }
    }

    fn handle_link_down(
        &mut self,
        ctx: &mut Ctx<'_, DrsMsg>,
        peer: NodeId,
        net: NetId,
        sweep: Option<EventRef>,
    ) {
        self.metrics.link_down_events += 1;
        self.metrics
            .log(ctx.now(), DrsEventKind::LinkDown { peer, net });
        // Failure-detection latency: last healthy reply → this event. A
        // link that never answered has no baseline and records nothing
        // (no samples, not a fake zero).
        let idx = self.pair_idx(peer, net);
        let mut detect_ns = u64::MAX;
        if let Some(ok) = self.last_ok[idx] {
            let detect = ctx.now().since(ok);
            detect_ns = detect.as_nanos();
            ctx.probe_obs_mut().failover_detect.record(detect);
        }
        // Flight: the down transition carries the detect latency and is
        // pinned as a live chain head, so its ancestry (losses, last good
        // reply) survives ring eviction until the link recovers.
        let down = ctx.flight_record(TraceKind::LinkDown, Some(net), detect_ns, sweep);
        if let Some(head) = down {
            if let Some(old) = self.down_ref[idx].replace(head) {
                ctx.flight_release(old);
            }
            ctx.flight_pin(head);
        }

        // The direct route to this peer may have died...
        if ctx.route(peer) == Some(Route::Direct(net)) {
            self.repair_route(ctx, peer, down);
        }
        // ...and so may any route relaying through this peer on this net.
        let broken: Vec<NodeId> = ctx
            .routes()
            .iter()
            .filter_map(|(dst, route)| match route {
                Route::Via { gateway, net: gnet } if gateway == peer && gnet == net => Some(dst),
                _ => None,
            })
            .collect();
        for dst in broken {
            self.repair_route(ctx, dst, down);
        }
    }

    fn handle_link_up(
        &mut self,
        ctx: &mut Ctx<'_, DrsMsg>,
        peer: NodeId,
        net: NetId,
        reply: Option<EventRef>,
    ) {
        self.metrics.link_up_events += 1;
        self.metrics
            .log(ctx.now(), DrsEventKind::LinkUp { peer, net });
        // Flight: the revival names the reply that proved the link, and
        // the failure chain it ends is unpinned — its records may now be
        // evicted like any others.
        ctx.flight_record(TraceKind::LinkUp, Some(net), u64::from(peer.0), reply);
        let idx = self.pair_idx(peer, net);
        if let Some(head) = self.down_ref[idx].take() {
            ctx.flight_release(head);
        }

        // Any running discovery for this peer is obsolete.
        if let Some(round) = self.discovery[peer.idx()].as_mut() {
            round.decided = true;
        }

        let current = ctx.route(peer);
        let best = self
            .best_direct(peer)
            .expect("a link just came up, so some direct net is up");
        let should_move = match current {
            None => true,
            Some(Route::Via { .. }) => true,
            Some(Route::Direct(cur)) => {
                cur != best
                    && (self.cfg.prefer_primary || self.peers.state(peer, cur) == LinkState::Down)
            }
        };
        if should_move {
            if matches!(current, Some(Route::Via { .. }) | Some(Route::Direct(_))) {
                self.metrics.reverts += 1;
            }
            self.install(ctx, peer, Route::Direct(best));
        }
    }

    fn start_discovery(&mut self, ctx: &mut Ctx<'_, DrsMsg>, target: NodeId) {
        let now = ctx.now();
        if let Some(last) = self.last_discovery[target.idx()] {
            let round_active = self.discovery[target.idx()]
                .as_ref()
                .is_some_and(|r| !r.decided);
            if round_active || now.since(last) < self.cfg.discovery_backoff {
                return;
            }
        }
        self.last_discovery[target.idx()] = Some(now);
        self.next_req += 1;
        let req_id = self.next_req;
        self.discovery[target.idx()] = Some(DiscoveryRound {
            req_id,
            offers: Vec::new(),
            decided: false,
        });
        self.metrics.discoveries += 1;
        self.metrics
            .log(now, DrsEventKind::DiscoveryStarted { target });
        let msg = DrsMsg::RouteRequest { target, req_id };
        for net in NetId::planes(self.peers.planes()) {
            ctx.broadcast_control(net, msg);
        }
        // Arm the decision/failure-detection window.
        ctx.set_timer(
            self.cfg.offer_window,
            token(KIND_OFFER_WINDOW, target, NetId::A, req_id & 0xFF_FFFF),
        );
    }

    fn handle_offer_window(&mut self, ctx: &mut Ctx<'_, DrsMsg>, target: NodeId, req_low: u64) {
        let Some(round) = self.discovery[target.idx()].as_ref() else {
            return;
        };
        if round.decided || round.req_id & 0xFF_FFFF != req_low {
            return;
        }
        if round.offers.is_empty() {
            self.discovery[target.idx()].as_mut().expect("present").decided = true;
            self.metrics
                .log(ctx.now(), DrsEventKind::DiscoveryFailed { target });
            return;
        }
        let pick = match self.cfg.gateway_policy {
            GatewayPolicy::FirstOffer => round.offers[0], // unreachable in practice
            GatewayPolicy::LowestId => *round
                .offers
                .iter()
                .min_by_key(|(gw, _)| gw.0)
                .expect("non-empty"),
            GatewayPolicy::Random => {
                let i = ctx.rng().gen_range(0..round.offers.len());
                round.offers[i]
            }
        };
        self.discovery[target.idx()].as_mut().expect("present").decided = true;
        self.metrics.gateway_failovers += 1;
        self.install(
            ctx,
            target,
            Route::Via {
                gateway: pick.0,
                net: pick.1,
            },
        );
    }

    fn handle_route_request(
        &mut self,
        ctx: &mut Ctx<'_, DrsMsg>,
        from: NodeId,
        net: NetId,
        target: NodeId,
        req_id: u64,
    ) {
        if target == self.id || from == self.id {
            return; // cannot gateway to ourselves
        }
        // Offer only with a live *direct* route to the target: one-hop
        // relays cannot form loops.
        let usable = match ctx.route(target) {
            Some(Route::Direct(tnet)) => self.peers.state(target, tnet) == LinkState::Up,
            _ => false,
        };
        if !usable {
            return;
        }
        self.metrics.offers_sent += 1;
        ctx.send_control(net, from, DrsMsg::RouteOffer { target, req_id });
    }

    fn handle_route_offer(
        &mut self,
        ctx: &mut Ctx<'_, DrsMsg>,
        from: NodeId,
        net: NetId,
        target: NodeId,
        req_id: u64,
    ) {
        let Some(round) = self.discovery[target.idx()].as_mut() else {
            return;
        };
        if round.decided || round.req_id != req_id {
            return; // stale offer from an earlier round
        }
        match self.cfg.gateway_policy {
            GatewayPolicy::FirstOffer => {
                round.decided = true;
                self.metrics.gateway_failovers += 1;
                self.install(ctx, target, Route::Via { gateway: from, net });
            }
            GatewayPolicy::LowestId | GatewayPolicy::Random => {
                round.offers.push((from, net));
            }
        }
    }
}

impl Protocol for DrsDaemon {
    type Msg = DrsMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DrsMsg>) {
        // First sight of the scenario: size the link table (and the dense
        // per-pair state) to the cluster's actual redundancy degree.
        let planes = ctx.planes();
        self.peers = PeerTable::new(self.id, self.n, planes);
        let pairs = self.n * planes as usize;
        self.probe_spans = vec![None; pairs];
        self.last_ok = vec![None; pairs];
        self.probe_skip = vec![0; pairs];
        self.probe_send_ref = vec![None; pairs];
        self.probe_chain_ref = vec![None; pairs];
        self.down_ref = vec![None; pairs];
        if self.cfg.batched_monitor {
            // One cycle event drives the whole sweep (stagger does not
            // apply: the point of batching is the single timer).
            ctx.set_timer(SimDuration::ZERO, token(KIND_CYCLE, NodeId(0), NetId::A, 0));
            return;
        }
        // Arm one repeating probe timer per (peer, net) pair, staggered
        // across the first cycle so the shared medium never sees a burst.
        let pair_count = u64::from(planes) * (self.n - 1) as u64;
        let peers: Vec<NodeId> = self.peers.peers().collect();
        let mut k = 0u64;
        for peer in peers {
            for net in NetId::planes(planes) {
                let offset = if self.cfg.stagger {
                    SimDuration(self.cfg.probe_interval.as_nanos() * k / pair_count)
                } else {
                    SimDuration::ZERO
                };
                ctx.set_timer(offset, token(KIND_PROBE, peer, net, 0));
                k += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DrsMsg>, t: u64) {
        let (kind, peer, net, payload) = untoken(t);
        match kind {
            KIND_PROBE => {
                let seq = self.send_probe(ctx, peer, net);
                ctx.set_timer(
                    self.cfg.probe_timeout,
                    token(KIND_TIMEOUT, peer, net, seq as u64),
                );
                // Links believed down are re-probed at a (configurably)
                // relaxed rate: the outage is already being routed
                // around, so only recovery detection is at stake.
                let interval = if self.peers.state(peer, net) == LinkState::Down {
                    self.cfg
                        .probe_interval
                        .saturating_mul(self.cfg.down_probe_backoff)
                } else {
                    self.cfg.probe_interval
                };
                ctx.set_timer(interval, token(KIND_PROBE, peer, net, 0));

                // Retry loop for persistently unreachable peers: while both
                // direct links are down, keep re-discovering (rate-limited)
                // so a newly viable gateway is eventually found. Hooked to
                // the net-A probe only, to fire once per cycle per peer.
                if net == NetId::A && self.peers.peer_unreachable_direct(peer) {
                    self.start_discovery(ctx, peer);
                }
            }
            KIND_TIMEOUT => {
                self.metrics.timeouts += 1;
                let transition =
                    self.peers
                        .probe_timed_out(peer, net, payload as u32, self.cfg.miss_threshold);
                if transition == Transition::WentDown {
                    let sweep = self.record_timeout_sweep(ctx, peer, net);
                    self.handle_link_down(ctx, peer, net, sweep);
                }
            }
            KIND_OFFER_WINDOW => self.handle_offer_window(ctx, peer, payload),
            KIND_CYCLE => self.run_monitor_cycle(ctx),
            KIND_CYCLE_TIMEOUT => self.sweep_cycle_timeouts(ctx),
            _ => unreachable!("unknown timer kind {kind}"),
        }
    }

    fn on_echo_reply(
        &mut self,
        ctx: &mut Ctx<'_, DrsMsg>,
        from: NodeId,
        net: NetId,
        id: u32,
        seq: u32,
    ) {
        if id != ECHO_ID {
            return; // someone else's ping
        }
        self.metrics.replies_received += 1;
        let now = ctx.now();
        // Round-trip of the monitor cycle's probe, measured against the
        // most recent request on this (peer, net) — probes never overlap
        // on a link because the timeout is armed under the interval.
        let idx = self.pair_idx(from, net);
        if let Some(span) = self.probe_spans[idx].as_ref() {
            let rtt = SimDuration(span.elapsed_ns(now.0));
            ctx.probe_obs_mut().probe_rtt.record(rtt);
        }
        self.last_ok[idx] = Some(now);
        // Flight: a good reply answers the pair's outstanding send and
        // resets the chain tail — future failure chains walk back to
        // *this* record as their last-good anchor.
        let rref = ctx.flight_record(
            TraceKind::ProbeRecv,
            Some(net),
            u64::from(from.0) << 32 | u64::from(seq),
            self.probe_send_ref[idx],
        );
        if rref.is_some() {
            self.probe_chain_ref[idx] = rref;
        }
        if self.peers.reply_received(from, net, now) == Transition::WentUp {
            self.handle_link_up(ctx, from, net, rref);
        }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_, DrsMsg>, from: NodeId, net: NetId, msg: &DrsMsg) {
        match *msg {
            DrsMsg::RouteRequest { target, req_id } => {
                self.handle_route_request(ctx, from, net, target, req_id);
            }
            DrsMsg::RouteOffer { target, req_id } => {
                self.handle_route_offer(ctx, from, net, target, req_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::fault::{FaultPlan, SimComponent};
    use drs_sim::scenario::ClusterSpec;
    use drs_sim::time::SimTime;
    use drs_sim::world::World;

    fn drs_world(n: usize, seed: u64, cfg: DrsConfig) -> World<DrsDaemon> {
        let spec = ClusterSpec::new(n).seed(seed);
        World::new(spec, move |id| DrsDaemon::new(id, n, cfg))
    }

    fn fast_cfg() -> DrsConfig {
        DrsConfig::default()
            .probe_timeout(SimDuration::from_millis(50))
            .probe_interval(SimDuration::from_millis(200))
    }

    #[test]
    fn token_roundtrip() {
        for kind in [KIND_PROBE, KIND_TIMEOUT, KIND_OFFER_WINDOW] {
            for peer in [0u32, 1, 4095, (1 << 24) - 1] {
                for net in [NetId::A, NetId::B, NetId(2), NetId(7)] {
                    for payload in [0u64, 1, 0xFF_FFFF] {
                        let t = token(kind, NodeId(peer), net, payload);
                        assert_eq!(untoken(t), (kind, NodeId(peer), net, payload));
                    }
                }
            }
        }
    }

    #[test]
    fn healthy_cluster_stays_on_primary_routes() {
        let mut w = drs_world(6, 1, DrsConfig::default());
        w.run_for(SimDuration::from_secs(10));
        for i in 0..6u32 {
            let d = w.protocol(NodeId(i));
            assert_eq!(d.metrics.link_down_events, 0, "node {i}");
            assert_eq!(d.metrics.route_changes, 0, "node {i}");
            assert!(d.metrics.probes_sent > 0);
            // Every probe is answered except those still in flight when
            // the run stopped (at most one per monitored link).
            let in_flight_allowance = 2 * (6 - 1) as u64;
            assert!(
                d.metrics.replies_received + in_flight_allowance >= d.metrics.probes_sent,
                "node {i}: {} replies vs {} probes",
                d.metrics.replies_received,
                d.metrics.probes_sent
            );
        }
        assert_eq!(w.host(NodeId(0)).routes.indirect_count(), 0);
    }

    #[test]
    fn nic_failure_detected_within_worst_case_bound() {
        let cfg = fast_cfg();
        let mut w = drs_world(4, 2, cfg);
        let t0 = SimTime(2_000_000_000);
        w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Nic(NodeId(1), NetId::A)));
        w.run_for(SimDuration::from_secs(5));
        // Every other daemon must have detected (1, netA) down.
        for i in [0u32, 2, 3] {
            let d = w.protocol(NodeId(i));
            let det = d
                .metrics
                .first_after(t0, |k| {
                    matches!(k, DrsEventKind::LinkDown { peer, net }
                        if *peer == NodeId(1) && *net == NetId::A)
                })
                .unwrap_or_else(|| panic!("node {i} never detected the failure"));
            let latency = det.at - t0;
            assert!(
                latency <= cfg.worst_case_detection() + SimDuration::from_millis(50),
                "node {i}: detection took {latency}"
            );
        }
    }

    #[test]
    fn failover_to_redundant_network_is_automatic() {
        let mut w = drs_world(4, 3, fast_cfg());
        let t0 = SimTime(1_000_000_000);
        w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Nic(NodeId(2), NetId::A)));
        w.run_for(SimDuration::from_secs(4));
        // Everyone now routes to node 2 over network B, directly.
        for i in [0u32, 1, 3] {
            assert_eq!(
                w.host(NodeId(i)).routes.get(NodeId(2)),
                Some(Route::Direct(NetId::B)),
                "node {i}"
            );
            assert!(w.protocol(NodeId(i)).metrics.direct_failovers >= 1);
        }
        // Routes to everyone else are untouched.
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::A))
        );
    }

    #[test]
    fn hub_failure_moves_all_routes() {
        let mut w = drs_world(5, 4, fast_cfg());
        w.schedule_faults(
            FaultPlan::new().fail_at(SimTime(500_000_000), SimComponent::Hub(NetId::A)),
        );
        w.run_for(SimDuration::from_secs(4));
        for i in 0..5u32 {
            for (dst, route) in w.host(NodeId(i)).routes.iter() {
                assert_eq!(route, Route::Direct(NetId::B), "node {i} -> {dst}");
            }
        }
    }

    #[test]
    fn gateway_discovery_repairs_crossed_failure() {
        // Node 0 loses net B, node 1 loses net A: no shared direct network.
        let cfg = fast_cfg();
        let mut w = drs_world(4, 5, cfg);
        let t0 = SimTime(1_000_000_000);
        w.schedule_faults(
            FaultPlan::new()
                .fail_at(t0, SimComponent::Nic(NodeId(0), NetId::B))
                .fail_at(t0, SimComponent::Nic(NodeId(1), NetId::A)),
        );
        w.run_for(SimDuration::from_secs(6));
        let r01 = w.host(NodeId(0)).routes.get(NodeId(1));
        match r01 {
            Some(Route::Via { gateway, net }) => {
                assert!(gateway == NodeId(2) || gateway == NodeId(3));
                assert_eq!(net, NetId::A, "node 0 can only transmit on A");
            }
            other => panic!("expected gateway route, got {other:?}"),
        }
        let r10 = w.host(NodeId(1)).routes.get(NodeId(0));
        match r10 {
            Some(Route::Via { net, .. }) => assert_eq!(net, NetId::B),
            other => panic!("expected gateway route, got {other:?}"),
        }
        assert!(w.protocol(NodeId(0)).metrics.gateway_failovers >= 1);
        // And traffic actually flows end-to-end through the relay.
        let flow = w.send_app(w.now(), NodeId(0), NodeId(1), 256);
        w.run_for(SimDuration::from_secs(5));
        assert!(matches!(
            w.flow_outcome(flow),
            Some(drs_sim::world::FlowOutcome::Delivered(_))
        ));
    }

    #[test]
    fn recovery_reverts_to_direct_primary_route() {
        let cfg = fast_cfg();
        let mut w = drs_world(3, 6, cfg);
        w.schedule_faults(
            FaultPlan::new()
                .fail_at(
                    SimTime(1_000_000_000),
                    SimComponent::Nic(NodeId(1), NetId::A),
                )
                .repair_at(
                    SimTime(5_000_000_000),
                    SimComponent::Nic(NodeId(1), NetId::A),
                ),
        );
        w.run_for(SimDuration::from_secs(3)); // failed over by now
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::B))
        );
        w.run_for(SimDuration::from_secs(5)); // repaired and re-probed
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::A)),
            "prefer_primary reverts to net A"
        );
        assert!(w.protocol(NodeId(0)).metrics.reverts >= 1);
    }

    #[test]
    fn no_revert_to_primary_when_preference_disabled() {
        let cfg = fast_cfg().prefer_primary(false);
        let mut w = drs_world(3, 7, cfg);
        w.schedule_faults(
            FaultPlan::new()
                .fail_at(
                    SimTime(1_000_000_000),
                    SimComponent::Nic(NodeId(1), NetId::A),
                )
                .repair_at(
                    SimTime(5_000_000_000),
                    SimComponent::Nic(NodeId(1), NetId::A),
                ),
        );
        w.run_for(SimDuration::from_secs(10));
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::B)),
            "sticky failover keeps the working route"
        );
    }

    #[test]
    fn application_unaware_of_failure_after_convergence() {
        // The paper's headline: traffic sent after DRS converges on a
        // failure is delivered without a single retransmission.
        let mut w = drs_world(6, 8, fast_cfg());
        w.schedule_faults(
            FaultPlan::new().fail_at(SimTime(1_000_000_000), SimComponent::Hub(NetId::A)),
        );
        w.run_for(SimDuration::from_secs(4)); // converge
        let before = w.app_stats().retransmits;
        for i in 1..6u32 {
            w.send_app(w.now(), NodeId(0), NodeId(i), 512);
        }
        w.run_for(SimDuration::from_secs(5));
        assert_eq!(w.app_stats().delivered, 5);
        assert_eq!(w.app_stats().retransmits, before, "no app-visible impact");
    }

    #[test]
    fn isolated_peer_discovery_fails_cleanly() {
        // Node 1 loses both NICs: no gateway can exist.
        let cfg = fast_cfg();
        let mut w = drs_world(4, 9, cfg);
        w.schedule_faults(
            FaultPlan::new()
                .fail_at(SimTime(500_000_000), SimComponent::Nic(NodeId(1), NetId::A))
                .fail_at(SimTime(500_000_000), SimComponent::Nic(NodeId(1), NetId::B)),
        );
        w.run_for(SimDuration::from_secs(6));
        let d = w.protocol(NodeId(0));
        assert!(d.metrics.discoveries >= 1, "discovery was attempted");
        assert!(
            d.metrics
                .first_after(SimTime(0), |k| matches!(
                    k,
                    DrsEventKind::DiscoveryFailed { target } if *target == NodeId(1)
                ))
                .is_some(),
            "discovery failure logged"
        );
        // A neighbour whose own detection lagged may have made a stale
        // offer transiently; what matters is the end state: traffic to the
        // isolated peer fails, traffic to everyone else flows.
        let dead = w.send_app(w.now(), NodeId(0), NodeId(1), 64);
        let alive = w.send_app(w.now(), NodeId(0), NodeId(2), 64);
        w.run_for(SimDuration::from_secs(200));
        assert_eq!(
            w.flow_outcome(dead),
            Some(drs_sim::world::FlowOutcome::GaveUp),
            "no protocol can reach a host with no NICs"
        );
        assert!(matches!(
            w.flow_outcome(alive),
            Some(drs_sim::world::FlowOutcome::Delivered(_))
        ));
    }

    #[test]
    fn lowest_id_policy_picks_deterministic_gateway() {
        let cfg = fast_cfg().gateway_policy(GatewayPolicy::LowestId);
        let mut w = drs_world(6, 10, cfg);
        let t0 = SimTime(1_000_000_000);
        w.schedule_faults(
            FaultPlan::new()
                .fail_at(t0, SimComponent::Nic(NodeId(0), NetId::B))
                .fail_at(t0, SimComponent::Nic(NodeId(1), NetId::A)),
        );
        w.run_for(SimDuration::from_secs(6));
        match w.host(NodeId(0)).routes.get(NodeId(1)) {
            Some(Route::Via { gateway, .. }) => {
                assert_eq!(gateway, NodeId(2), "lowest-id candidate wins")
            }
            other => panic!("expected gateway route, got {other:?}"),
        }
    }

    #[test]
    fn probe_overhead_matches_figure1_model() {
        // 8 nodes, 1 s cycle: each host sends 2*(8-1) = 14 probes/s; the
        // cluster offers 8*14 = 112 request frames/s per... per two nets:
        // net A carries 8*7 = 56 requests + 56 replies per second.
        let mut w = drs_world(8, 11, DrsConfig::default());
        let snap = w.medium(NetId::A).stats;
        let t0 = w.now();
        w.run_for(SimDuration::from_secs(10));
        let bytes = w.medium(NetId::A).stats.probe_bytes - snap.probe_bytes;
        let expected = 10 * 2 * 8 * 7 * 74; // 10 s x (req+reply) x N(N-1) x 74 B
        let ratio = bytes as f64 / expected as f64;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "probe bytes {bytes} vs expected {expected}"
        );
        let util = w.medium(NetId::A).utilization_since(&snap, t0, w.now());
        assert!(util < 0.01, "8-node probing is well under 1%: {util}");
    }

    #[test]
    fn miss_threshold_absorbs_random_frame_loss() {
        // 2% wire loss: a single-miss daemon flaps links constantly; the
        // deployed 2-miss threshold keeps the view essentially stable
        // (P[flap per probe] drops from ~4% to ~0.16%). This is the
        // design rationale for counting consecutive misses.
        let flaps = |threshold: u32| {
            let n = 5;
            let cfg = DrsConfig::default()
                .probe_timeout(SimDuration::from_millis(50))
                .probe_interval(SimDuration::from_millis(200))
                .miss_threshold(threshold);
            let spec = ClusterSpec::new(n).seed(1234).frame_loss_rate(0.02);
            let mut w = World::new(spec, move |id| DrsDaemon::new(id, n, cfg));
            w.run_for(SimDuration::from_secs(60));
            (0..n as u32)
                .map(|i| w.protocol(NodeId(i)).metrics.link_down_events)
                .sum::<u64>()
        };
        let flappy = flaps(1);
        let stable = flaps(2);
        assert!(
            flappy > 10 * stable.max(1),
            "threshold must suppress loss-induced flapping: {flappy} vs {stable}"
        );
    }

    #[test]
    fn lossy_network_does_not_break_failover() {
        // Real failure + background loss: DRS must still converge and
        // deliver, despite occasional false misses.
        let n = 6;
        let cfg = DrsConfig::default()
            .probe_timeout(SimDuration::from_millis(50))
            .probe_interval(SimDuration::from_millis(200))
            .miss_threshold(3);
        let spec = ClusterSpec::new(n).seed(77).frame_loss_rate(0.01);
        let mut w = World::new(spec, move |id| DrsDaemon::new(id, n, cfg));
        w.schedule_faults(
            FaultPlan::new().fail_at(SimTime(1_000_000_000), SimComponent::Hub(NetId::A)),
        );
        w.run_for(SimDuration::from_secs(5));
        for i in 1..n as u32 {
            w.send_app(w.now(), NodeId(0), NodeId(i), 256);
        }
        w.run_for(SimDuration::from_secs(200));
        assert_eq!(w.app_stats().delivered, w.app_stats().sent);
    }

    #[test]
    fn degraded_cable_detected_like_a_hard_fault() {
        // A 99.9%-loss cable is indistinguishable from a dead link to the
        // prober, and must trigger the same failover.
        let n = 4;
        let cfg = fast_cfg();
        let mut w = drs_world(n, 88, cfg);
        w.run_for(SimDuration::from_secs(1));
        w.set_link_loss(NodeId(1), NetId::A, 0.999);
        w.run_for(SimDuration::from_secs(8));
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::B)),
            "flaky cable must be routed around"
        );
    }

    #[test]
    fn down_probe_backoff_saves_bandwidth_but_delays_recovery_only() {
        // Kill a peer's NIC, leave it down for a while, then repair. A
        // backed-off daemon sends far fewer probes during the outage yet
        // detects the failure just as fast; only the recovery detection
        // stretches (bounded by backoff x interval).
        let run = |backoff: u64| {
            let n = 3;
            let cfg = fast_cfg().down_probe_backoff(backoff);
            let mut w = drs_world(n, 99, cfg);
            w.schedule_faults(
                FaultPlan::new()
                    .fail_at(
                        SimTime(1_000_000_000),
                        SimComponent::Nic(NodeId(1), NetId::A),
                    )
                    .repair_at(
                        SimTime(21_000_000_000),
                        SimComponent::Nic(NodeId(1), NetId::A),
                    ),
            );
            w.run_for(SimDuration::from_secs(20)); // during outage
            let probes_during = w.protocol(NodeId(0)).metrics.probes_sent;
            w.run_for(SimDuration::from_secs(20)); // past repair
            let recovered =
                w.host(NodeId(0)).routes.get(NodeId(1)) == Some(Route::Direct(NetId::A));
            let detect_at = w
                .protocol(NodeId(0))
                .metrics
                .first_after(SimTime(1_000_000_000), |k| {
                    matches!(k, DrsEventKind::LinkDown { peer, net }
                        if *peer == NodeId(1) && *net == NetId::A)
                })
                .expect("detected")
                .at;
            (probes_during, recovered, detect_at)
        };
        let (probes_full, rec_full, det_full) = run(1);
        let (probes_backed, rec_backed, det_backed) = run(10);
        assert!(
            probes_backed < probes_full - 20,
            "backoff must reduce outage probing: {probes_backed} vs {probes_full}"
        );
        assert!(rec_full && rec_backed, "both recover after the repair");
        assert_eq!(det_full, det_backed, "failure detection speed unchanged");
    }

    #[test]
    fn healthy_cluster_probe_observability() {
        let cfg = DrsConfig::default();
        let mut w = drs_world(4, 21, cfg);
        w.run_for(SimDuration::from_secs(10));
        for i in 0..4u32 {
            let obs = &w.host(NodeId(i)).obs;
            let probes = w.protocol(NodeId(i)).metrics.probes_sent;
            // Every probe request is charged to its sender at the ICMP
            // wire size — the measured half of the Figure 1 budget.
            assert_eq!(obs.probe_bytes, probes * 74, "node {i}");
            // The realized monitor cycle is the configured interval.
            let gap = &obs.probe_gap;
            assert!(gap.count() > 0, "node {i} recorded probe gaps");
            assert_eq!(
                gap.min(),
                Some(cfg.probe_interval),
                "node {i}: healthy links re-arm at exactly the interval"
            );
            // RTTs on an idle 100 Mb/s hub are microseconds, far under
            // the probe timeout.
            let rtt = &obs.probe_rtt;
            assert!(rtt.count() > 0, "node {i} recorded RTTs");
            assert!(rtt.max().unwrap() < cfg.probe_timeout, "node {i}");
            // Nothing failed, so failure channels must be *empty* — not
            // zero-valued.
            assert_eq!(obs.failover_detect.count(), 0, "node {i}");
            assert_eq!(obs.reroute_complete.count(), 0, "node {i}");
            assert_eq!(obs.failover_detect.quantile_upper_bound(0.5), None);
        }
    }

    #[test]
    fn failover_latency_lands_in_the_histograms() {
        let cfg = fast_cfg();
        let mut w = drs_world(4, 22, cfg);
        let t0 = SimTime(2_000_000_000);
        w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Nic(NodeId(1), NetId::A)));
        w.run_for(SimDuration::from_secs(6));
        for i in [0u32, 2, 3] {
            let obs = &w.host(NodeId(i)).obs;
            assert_eq!(obs.failover_detect.count(), 1, "node {i}");
            // Measured from the last healthy reply, which precedes the
            // fault by up to one probe interval.
            let detect = obs.failover_detect.max().unwrap();
            assert!(
                detect <= cfg.worst_case_detection() + cfg.probe_interval,
                "node {i}: detection latency {detect}"
            );
            // The failed link carried this node's route to node 1, so a
            // repair span must have opened and closed.
            assert_eq!(obs.reroute_complete.count(), 1, "node {i}");
            let reroute = obs.reroute_complete.max().unwrap();
            assert!(reroute < SimDuration::from_millis(1), "repair is immediate");
        }
        // The failed host's own histograms see the probes *it* lost.
        let failed = &w.host(NodeId(1)).obs;
        assert!(failed.failover_detect.count() >= 1);
    }

    #[test]
    fn three_plane_cluster_survives_any_single_hub_failure_without_rtos() {
        // The K-plane generalization's core promise: whichever single
        // plane's hub dies, DRS converges and post-convergence traffic
        // between every pair is delivered with zero application-visible
        // retransmissions.
        for plane in 0..3u8 {
            let n = 4;
            let cfg = fast_cfg();
            let spec = ClusterSpec::new(n).seed(31 + u64::from(plane)).planes(3);
            let mut w = World::new(spec, move |id| DrsDaemon::new(id, n, cfg));
            w.schedule_faults(
                FaultPlan::new()
                    .fail_at(SimTime(1_000_000_000), SimComponent::Hub(NetId(plane))),
            );
            w.run_for(SimDuration::from_secs(4)); // converge
            let before = w.app_stats().retransmits;
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    if i != j {
                        w.send_app(w.now(), NodeId(i), NodeId(j), 256);
                    }
                }
            }
            w.run_for(SimDuration::from_secs(5));
            assert_eq!(
                w.app_stats().delivered,
                (n * (n - 1)) as u64,
                "plane {plane}: all pairs deliver"
            );
            assert_eq!(
                w.app_stats().retransmits,
                before,
                "plane {plane}: zero app-visible RTOs"
            );
        }
    }

    #[test]
    fn failover_cascades_to_the_next_healthy_plane() {
        // K = 4, hubs 0 and 1 both dead: every route lands on plane 2,
        // the first healthy plane in order.
        let n = 3;
        let cfg = fast_cfg();
        let spec = ClusterSpec::new(n).seed(55).planes(4);
        let mut w = World::new(spec, move |id| DrsDaemon::new(id, n, cfg));
        w.schedule_faults(
            FaultPlan::new()
                .fail_at(SimTime(500_000_000), SimComponent::Hub(NetId::A))
                .fail_at(SimTime(500_000_000), SimComponent::Hub(NetId::B)),
        );
        w.run_for(SimDuration::from_secs(5));
        for i in 0..n as u32 {
            for (dst, route) in w.host(NodeId(i)).routes.iter() {
                assert_eq!(route, Route::Direct(NetId(2)), "node {i} -> {dst}");
            }
        }
    }

    #[test]
    fn daemon_state_machine_is_deterministic() {
        let run = |seed| {
            let mut w = drs_world(5, seed, fast_cfg());
            w.schedule_faults(
                FaultPlan::new().fail_at(SimTime(700_000_000), SimComponent::Hub(NetId::A)),
            );
            w.run_for(SimDuration::from_secs(5));
            (0..5u32)
                .map(|i| {
                    let m = &w.protocol(NodeId(i)).metrics;
                    (m.probes_sent, m.route_changes, m.link_down_events)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }
}
