//! Phase 2 of the DRS run process: the daemon state machine.
//!
//! The daemon loops through the cycle the paper describes — *"monitoring
//! communication links, answering requests, and fixing problems as they
//! occur, for the life of the server cluster"*:
//!
//! * **monitoring** — staggered ICMP probes of every `(peer, net)` pair
//!   across all `K` network planes, one full sweep per probe interval;
//! * **answering requests** — when another daemon broadcasts a
//!   [`DrsMsg::RouteRequest`], offer to act as gateway if (and only if)
//!   this host has a live *direct* route to the target (the directness
//!   requirement keeps relays one hop deep and is the protocol's routing
//!   loop avoidance, backstopped by the stack's TTL);
//! * **fixing problems** — when the link under a kernel route fails,
//!   repair it: first to the peer's NIC on the next healthy plane, and if
//!   every direct link is gone, through broadcast gateway discovery.
//!   When a direct link recovers, revert to it.
//!
//! All repair actions are driven by probe state transitions, never by
//! application traffic — that is what makes DRS *proactive*: by the time
//! an application sends, the route table has already been fixed.
//!
//! The daemon talks to the outside world only through
//! [`crate::io::DrsIo`]: the four entry points ([`DrsDaemon::handle_start`],
//! [`DrsDaemon::handle_timer`], [`DrsDaemon::handle_echo_reply`],
//! [`DrsDaemon::handle_control`]) each take `&mut impl DrsIo`, so the
//! identical state machine runs on the DES kernel, on real UDP sockets,
//! and against a recorded trace.

use drs_obs::flight::{EventRef, TraceKind};
use drs_obs::Span;

use crate::config::{DrsConfig, GatewayPolicy};
use crate::ids::{NetId, NodeId};
use crate::io::DrsIo;
use crate::journal::{DaemonInput, DaemonJournal};
use crate::messages::DrsMsg;
use crate::metrics::{DrsEventKind, DrsMetrics, ProbeRecord};
use crate::monitor::{LinkState, PeerTable, Transition};
use crate::routes::Route;
use crate::time::{SimDuration, SimTime};

/// ICMP identifier used by all DRS probes.
const ECHO_ID: u32 = 0x0D25;

// Timer token layout: [kind:8][peer:24][net:8][payload:24]
const KIND_PROBE: u64 = 1;
const KIND_TIMEOUT: u64 = 2;
const KIND_OFFER_WINDOW: u64 = 3;
const KIND_CYCLE: u64 = 4;
const KIND_CYCLE_TIMEOUT: u64 = 5;

fn token(kind: u64, peer: NodeId, net: NetId, payload: u64) -> u64 {
    debug_assert!(payload < (1 << 24));
    kind << 56 | (peer.0 as u64) << 32 | (net.idx() as u64) << 24 | payload
}

fn untoken(t: u64) -> (u64, NodeId, NetId, u64) {
    (
        t >> 56,
        NodeId((t >> 32 & 0xFF_FFFF) as u32),
        NetId::from_idx((t >> 24 & 0xFF) as usize),
        t & 0xFF_FFFF,
    )
}

#[derive(Debug, Clone)]
struct DiscoveryRound {
    req_id: u64,
    offers: Vec<(NodeId, NetId)>,
    decided: bool,
}

/// One host's DRS routing demon.
///
/// All per-peer and per-`(peer, net)` state lives in dense vectors
/// indexed by node id (and plane) — ids are small and sequential, so
/// dense indexing is both the fastest lookup and, unlike the former
/// `std::collections::HashMap`s, free of any SipHash seeding that could
/// leak into iteration order.
#[derive(Debug, Clone)]
pub struct DrsDaemon {
    id: NodeId,
    n: usize,
    cfg: DrsConfig,
    peers: PeerTable,
    next_seq: u32,
    next_req: u64,
    /// Active discovery round per target, indexed by [`NodeId::idx`].
    discovery: Vec<Option<DiscoveryRound>>,
    /// Last discovery start per target, indexed by [`NodeId::idx`].
    last_discovery: Vec<Option<SimTime>>,
    /// Counters and the timestamped event log.
    pub metrics: DrsMetrics,
    /// Input journal for trace replay, present when
    /// [`DrsConfig::record_journal`] is on. Recording never changes what
    /// the daemon does.
    journal: Option<DaemonJournal>,
    // Observability spans, all clocked on simulation time. Recording
    // into them never schedules events or draws randomness, so the
    // instrumented daemon is event-for-event identical to PR-2's.
    /// Open span per monitored `(peer, net)` pair ([`Self::pair_idx`]):
    /// the in-flight monitor cycle. Closed into `probe_gap`/`probe_rtt`.
    probe_spans: Vec<Option<Span>>,
    /// Last time each `(peer, net)` pair answered a probe — the baseline
    /// for failure-detection latency.
    last_ok: Vec<Option<SimTime>>,
    /// Open repair span per destination ([`NodeId::idx`]): failure
    /// observed → new route installed. Closed into `reroute_complete`.
    pending_reroute: Vec<Option<Span>>,
    /// Probes sent by the current batched monitor cycle, awaiting the
    /// cycle's single timeout sweep. Recycled between cycles: the batched
    /// probe path performs no steady-state heap allocation.
    cycle_probes: Vec<(NodeId, NetId, u32)>,
    /// Batched-mode down-link backoff: cycles left to skip per pair.
    probe_skip: Vec<u64>,
    // Flight-recorder identities (all `None` while the recorder is off;
    // recording never changes what the daemon *does*, only what it can
    // explain afterwards).
    /// Last `ProbeSend` record per `(peer, net)` pair.
    probe_send_ref: Vec<Option<EventRef>>,
    /// Causal-chain tail per pair: the previous probe send, or the last
    /// good reply — so a chain walks send → … → send → last-good-recv.
    probe_chain_ref: Vec<Option<EventRef>>,
    /// Open `FailoverDecision` per destination, consumed by the
    /// `RerouteComplete` that closes the repair span.
    pending_reroute_ref: Vec<Option<EventRef>>,
    /// Pinned `LinkDown` chain head per pair, released on link-up.
    down_ref: Vec<Option<EventRef>>,
}

impl DrsDaemon {
    /// A daemon for host `id` in an `n`-host cluster.
    ///
    /// The link table is sized for the paper's two planes here and
    /// re-sized to the backend's actual redundancy degree in
    /// [`Self::handle_start`], where the daemon first sees it.
    ///
    /// # Panics
    /// Panics if the cluster has fewer than two hosts or more than the
    /// 2²⁴ the timer-token encoding supports.
    #[must_use]
    pub fn new(id: NodeId, n: usize, cfg: DrsConfig) -> Self {
        assert!(n >= 2, "DRS monitors peers; a cluster needs two hosts");
        assert!(n < (1 << 24), "cluster size exceeds token encoding");
        DrsDaemon {
            id,
            n,
            cfg,
            peers: PeerTable::new(id, n, 2),
            next_seq: 0,
            next_req: 0,
            discovery: vec![None; n],
            last_discovery: vec![None; n],
            metrics: DrsMetrics::default(),
            journal: if cfg.record_journal {
                Some(DaemonJournal::default())
            } else {
                None
            },
            probe_spans: vec![None; n * 2],
            last_ok: vec![None; n * 2],
            pending_reroute: vec![None; n],
            cycle_probes: Vec::new(),
            probe_skip: vec![0; n * 2],
            probe_send_ref: vec![None; n * 2],
            probe_chain_ref: vec![None; n * 2],
            pending_reroute_ref: vec![None; n],
            down_ref: vec![None; n * 2],
        }
    }

    /// Dense index of a `(peer, net)` pair into the per-pair vectors.
    fn pair_idx(&self, peer: NodeId, net: NetId) -> usize {
        peer.idx() * self.peers.planes() as usize + net.idx()
    }

    /// The daemon's view of its links.
    #[must_use]
    pub fn peer_table(&self) -> &PeerTable {
        &self.peers
    }

    /// The host this daemon runs on.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The cluster size this daemon was configured for.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// The daemon's configuration.
    #[must_use]
    pub fn config(&self) -> &DrsConfig {
        &self.cfg
    }

    /// The recorded input journal, when [`DrsConfig::record_journal`] is
    /// on.
    #[must_use]
    pub fn journal(&self) -> Option<&DaemonJournal> {
        self.journal.as_ref()
    }

    /// Takes the recorded journal out of the daemon, leaving recording
    /// disabled.
    pub fn take_journal(&mut self) -> Option<DaemonJournal> {
        self.journal.take()
    }

    fn journal_input(&mut self, at: SimTime, input: DaemonInput) {
        if let Some(j) = self.journal.as_mut() {
            j.push(at, input);
        }
    }

    fn alloc_seq(&mut self) -> u32 {
        self.next_seq = (self.next_seq + 1) & 0xFF_FFFF;
        self.next_seq
    }

    /// Transmits one monitor probe to `(peer, net)`: sequence allocation,
    /// pending-probe bookkeeping, probe-gap span rotation and the echo
    /// itself — everything except timeout arming, which differs between
    /// the per-pair and batched monitor drivers. Returns the ICMP seq.
    fn send_probe(&mut self, io: &mut impl DrsIo, peer: NodeId, net: NetId) -> u32 {
        let seq = self.alloc_seq();
        self.peers.probe_sent(peer, net, seq);
        self.metrics.probes_sent += 1;
        // One monitor-cycle span per (peer, net): opening the new one
        // closes the old one into the probe-gap histogram — the realized
        // sweep period, stagger and backoff included.
        let span = Span::begin(io.now().0);
        let idx = self.pair_idx(peer, net);
        if let Some(prev) = self.probe_spans[idx].replace(span) {
            let gap = SimDuration(prev.elapsed_ns(span.start_ns()));
            io.probe_obs_mut().probe_gap.record(gap);
        }
        if self.cfg.record_probe_log {
            self.metrics.probe_log.push(ProbeRecord {
                at: io.now(),
                peer,
                net,
                seq,
            });
        }
        // Flight: this send's cause is the pair's chain tail (the
        // previous send, or the last good reply), and the send ref rides
        // on the frame so kernel loss sites can blame it.
        let sref = io.flight_record(
            TraceKind::ProbeSend,
            Some(net),
            u64::from(peer.0) << 32 | u64::from(seq),
            self.probe_chain_ref[idx],
        );
        if sref.is_some() {
            self.probe_send_ref[idx] = sref;
            self.probe_chain_ref[idx] = sref;
        }
        io.send_echo_traced(net, peer, ECHO_ID, seq, sref);
        seq
    }

    /// One batched monitor cycle: fan out every due `(peer, net)` probe
    /// inline — peers in id order, planes in order within each peer,
    /// exactly the per-pair timers' firing order — then arm a single
    /// timeout sweep and the next cycle. Two queue entries per cycle per
    /// daemon, against `2·K·(N-1)` for the per-pair driver.
    fn run_monitor_cycle(&mut self, io: &mut impl DrsIo) {
        self.cycle_probes.clear();
        let planes = self.peers.planes();
        for p in 0..self.n as u32 {
            let peer = NodeId(p);
            if peer == self.id {
                continue;
            }
            for net in NetId::planes(planes) {
                let idx = self.pair_idx(peer, net);
                if self.probe_skip[idx] > 0 {
                    // Down-link backoff: the per-pair driver stretches the
                    // re-arm delay; the batched driver skips whole cycles.
                    self.probe_skip[idx] -= 1;
                    continue;
                }
                let seq = self.send_probe(io, peer, net);
                self.cycle_probes.push((peer, net, seq));
                if self.peers.state(peer, net) == LinkState::Down {
                    self.probe_skip[idx] = self.cfg.down_probe_backoff - 1;
                }
                // Same retry hook as the per-pair driver: once per cycle
                // per peer, keyed to an actually-sent plane-A probe.
                if net == NetId::A && self.peers.peer_unreachable_direct(peer) {
                    self.start_discovery(io, peer);
                }
            }
        }
        io.set_timer(
            self.cfg.probe_timeout,
            token(KIND_CYCLE_TIMEOUT, NodeId(0), NetId::A, 0),
        );
        io.set_timer(
            self.cfg.probe_interval,
            token(KIND_CYCLE, NodeId(0), NetId::A, 0),
        );
    }

    /// The batched cycle's single timeout sweep, covering every probe the
    /// cycle sent in the same pair order. Sound because the config
    /// guarantees `probe_timeout < probe_interval`: the sweep always
    /// fires before the next fan-out reuses the buffer.
    fn sweep_cycle_timeouts(&mut self, io: &mut impl DrsIo) {
        let probes = std::mem::take(&mut self.cycle_probes);
        for &(peer, net, seq) in &probes {
            self.metrics.timeouts += 1;
            let transition = self
                .peers
                .probe_timed_out(peer, net, seq, self.cfg.miss_threshold);
            if transition == Transition::WentDown {
                let sweep = self.record_timeout_sweep(io, peer, net);
                self.handle_link_down(io, peer, net, sweep);
            }
        }
        self.cycle_probes = probes;
    }

    /// Flight: the sweep record that declared `(peer, net)` overdue,
    /// caused by the probe send it gave up on.
    fn record_timeout_sweep(
        &mut self,
        io: &mut impl DrsIo,
        peer: NodeId,
        net: NetId,
    ) -> Option<EventRef> {
        let cause = self.probe_send_ref[self.pair_idx(peer, net)];
        io.flight_record(TraceKind::TimeoutSweep, Some(net), u64::from(peer.0), cause)
    }

    /// The direct network this daemon would prefer for `peer` right now,
    /// given its link beliefs: the lowest-numbered plane whose link is up
    /// — primary first, then the next healthy plane in order.
    fn best_direct(&self, peer: NodeId) -> Option<NetId> {
        self.peers.first_up(peer)
    }

    fn install(&mut self, io: &mut impl DrsIo, dst: NodeId, route: Route) {
        if io.route(dst) == Some(route) {
            return;
        }
        io.set_route(dst, route);
        self.metrics.route_changes += 1;
        self.metrics
            .log(io.now(), DrsEventKind::RouteChanged { dst, route });
        // A repair span for this destination closes on the first actual
        // route change after the failure — if discovery had to wait for
        // the peer to recover, the recorded latency honestly covers the
        // whole outage.
        if let Some(span) = self.pending_reroute[dst.idx()].take() {
            let elapsed = SimDuration(span.elapsed_ns(io.now().0));
            io.probe_obs_mut().reroute_complete.record(elapsed);
            // Flight: exactly one completion per closed repair span, so
            // these records mirror the reroute_complete histogram 1:1.
            io.flight_record(
                TraceKind::RerouteComplete,
                None,
                elapsed.as_nanos(),
                self.pending_reroute_ref[dst.idx()].take(),
            );
            // Session layer: exactly one notification per closed repair
            // span, so the fluid workload engine can cross-check its
            // stall/resume accounting against `reroute_complete` 1:1.
            io.notify_reroute(dst);
        }
    }

    /// Repairs the route to `dst` after its current path broke: redundant
    /// direct link first, gateway discovery second. `cause` is the
    /// link-down record that forced the repair.
    fn repair_route(&mut self, io: &mut impl DrsIo, dst: NodeId, cause: Option<EventRef>) {
        let now = io.now();
        let newly_opened = self.pending_reroute[dst.idx()].is_none();
        self.pending_reroute[dst.idx()].get_or_insert_with(|| Span::begin(now.0));
        let direct = self.best_direct(dst);
        if newly_opened {
            // Flight: one decision per repair span, at the instant it
            // opens — mode says which repair path the daemon committed to.
            let mode = u64::from(direct.is_none());
            self.pending_reroute_ref[dst.idx()] = io.flight_record(
                TraceKind::FailoverDecision,
                None,
                u64::from(dst.0) << 1 | mode,
                cause,
            );
        }
        if let Some(net) = direct {
            let new = Route::Direct(net);
            if io.route(dst) != Some(new) {
                self.metrics.direct_failovers += 1;
                self.install(io, dst, new);
            }
        } else {
            self.start_discovery(io, dst);
        }
    }

    fn handle_link_down(
        &mut self,
        io: &mut impl DrsIo,
        peer: NodeId,
        net: NetId,
        sweep: Option<EventRef>,
    ) {
        self.metrics.link_down_events += 1;
        self.metrics
            .log(io.now(), DrsEventKind::LinkDown { peer, net });
        // Failure-detection latency: last healthy reply → this event. A
        // link that never answered has no baseline and records nothing
        // (no samples, not a fake zero).
        let idx = self.pair_idx(peer, net);
        let mut detect_ns = u64::MAX;
        if let Some(ok) = self.last_ok[idx] {
            let detect = io.now().since(ok);
            detect_ns = detect.as_nanos();
            io.probe_obs_mut().failover_detect.record(detect);
        }
        // Flight: the down transition carries the detect latency and is
        // pinned as a live chain head, so its ancestry (losses, last good
        // reply) survives ring eviction until the link recovers.
        let down = io.flight_record(TraceKind::LinkDown, Some(net), detect_ns, sweep);
        if let Some(head) = down {
            if let Some(old) = self.down_ref[idx].replace(head) {
                io.flight_release(old);
            }
            io.flight_pin(head);
        }

        // The direct route to this peer may have died...
        if io.route(peer) == Some(Route::Direct(net)) {
            self.repair_route(io, peer, down);
        }
        // ...and so may any route relaying through this peer on this net.
        let broken: Vec<NodeId> = io
            .routes()
            .iter()
            .filter_map(|(dst, route)| match route {
                Route::Via { gateway, net: gnet } if gateway == peer && gnet == net => Some(dst),
                _ => None,
            })
            .collect();
        for dst in broken {
            self.repair_route(io, dst, down);
        }
    }

    fn handle_link_up(
        &mut self,
        io: &mut impl DrsIo,
        peer: NodeId,
        net: NetId,
        reply: Option<EventRef>,
    ) {
        self.metrics.link_up_events += 1;
        self.metrics
            .log(io.now(), DrsEventKind::LinkUp { peer, net });
        // Flight: the revival names the reply that proved the link, and
        // the failure chain it ends is unpinned — its records may now be
        // evicted like any others.
        io.flight_record(TraceKind::LinkUp, Some(net), u64::from(peer.0), reply);
        let idx = self.pair_idx(peer, net);
        if let Some(head) = self.down_ref[idx].take() {
            io.flight_release(head);
        }

        // Any running discovery for this peer is obsolete.
        if let Some(round) = self.discovery[peer.idx()].as_mut() {
            round.decided = true;
        }

        let current = io.route(peer);
        let best = self
            .best_direct(peer)
            .expect("a link just came up, so some direct net is up");
        let should_move = match current {
            None => true,
            Some(Route::Via { .. }) => true,
            Some(Route::Direct(cur)) => {
                cur != best
                    && (self.cfg.prefer_primary || self.peers.state(peer, cur) == LinkState::Down)
            }
        };
        if should_move {
            if matches!(current, Some(Route::Via { .. }) | Some(Route::Direct(_))) {
                self.metrics.reverts += 1;
            }
            self.install(io, peer, Route::Direct(best));
        }
    }

    fn start_discovery(&mut self, io: &mut impl DrsIo, target: NodeId) {
        let now = io.now();
        if let Some(last) = self.last_discovery[target.idx()] {
            let round_active = self.discovery[target.idx()]
                .as_ref()
                .is_some_and(|r| !r.decided);
            if round_active || now.since(last) < self.cfg.discovery_backoff {
                return;
            }
        }
        self.last_discovery[target.idx()] = Some(now);
        self.next_req += 1;
        let req_id = self.next_req;
        self.discovery[target.idx()] = Some(DiscoveryRound {
            req_id,
            offers: Vec::new(),
            decided: false,
        });
        self.metrics.discoveries += 1;
        self.metrics
            .log(now, DrsEventKind::DiscoveryStarted { target });
        let msg = DrsMsg::RouteRequest { target, req_id };
        for net in NetId::planes(self.peers.planes()) {
            io.broadcast_control(net, msg);
        }
        // Arm the decision/failure-detection window.
        io.set_timer(
            self.cfg.offer_window,
            token(KIND_OFFER_WINDOW, target, NetId::A, req_id & 0xFF_FFFF),
        );
    }

    fn handle_offer_window(&mut self, io: &mut impl DrsIo, target: NodeId, req_low: u64) {
        let Some(round) = self.discovery[target.idx()].as_ref() else {
            return;
        };
        if round.decided || round.req_id & 0xFF_FFFF != req_low {
            return;
        }
        if round.offers.is_empty() {
            self.discovery[target.idx()].as_mut().expect("present").decided = true;
            self.metrics
                .log(io.now(), DrsEventKind::DiscoveryFailed { target });
            return;
        }
        let pick = match self.cfg.gateway_policy {
            GatewayPolicy::FirstOffer => round.offers[0], // unreachable in practice
            GatewayPolicy::LowestId => *round
                .offers
                .iter()
                .min_by_key(|(gw, _)| gw.0)
                .expect("non-empty"),
            GatewayPolicy::Random => {
                let i = io.pick(round.offers.len());
                if let Some(j) = self.journal.as_mut() {
                    j.push_pick(i);
                }
                round.offers[i]
            }
        };
        self.discovery[target.idx()].as_mut().expect("present").decided = true;
        self.metrics.gateway_failovers += 1;
        self.install(
            io,
            target,
            Route::Via {
                gateway: pick.0,
                net: pick.1,
            },
        );
    }

    fn handle_route_request(
        &mut self,
        io: &mut impl DrsIo,
        from: NodeId,
        net: NetId,
        target: NodeId,
        req_id: u64,
    ) {
        if target == self.id || from == self.id {
            return; // cannot gateway to ourselves
        }
        // Offer only with a live *direct* route to the target: one-hop
        // relays cannot form loops.
        let usable = match io.route(target) {
            Some(Route::Direct(tnet)) => self.peers.state(target, tnet) == LinkState::Up,
            _ => false,
        };
        if !usable {
            return;
        }
        self.metrics.offers_sent += 1;
        io.send_control(net, from, DrsMsg::RouteOffer { target, req_id });
    }

    fn handle_route_offer(
        &mut self,
        io: &mut impl DrsIo,
        from: NodeId,
        net: NetId,
        target: NodeId,
        req_id: u64,
    ) {
        let Some(round) = self.discovery[target.idx()].as_mut() else {
            return;
        };
        if round.decided || round.req_id != req_id {
            return; // stale offer from an earlier round
        }
        match self.cfg.gateway_policy {
            GatewayPolicy::FirstOffer => {
                round.decided = true;
                self.metrics.gateway_failovers += 1;
                self.install(io, target, Route::Via { gateway: from, net });
            }
            GatewayPolicy::LowestId | GatewayPolicy::Random => {
                round.offers.push((from, net));
            }
        }
    }

    // ---- Entry points -----------------------------------------------
    //
    // The backend (DES kernel, UDP event loop, trace replayer) calls
    // exactly these four methods; everything above is internal.

    /// Boot: size the per-pair state to the backend's plane count and arm
    /// the monitor timers.
    pub fn handle_start(&mut self, io: &mut impl DrsIo) {
        // First sight of the environment: size the link table (and the
        // dense per-pair state) to the cluster's actual redundancy degree.
        let planes = io.planes();
        self.journal_input(io.now(), DaemonInput::Start { planes });
        self.peers = PeerTable::new(self.id, self.n, planes);
        let pairs = self.n * planes as usize;
        self.probe_spans = vec![None; pairs];
        self.last_ok = vec![None; pairs];
        self.probe_skip = vec![0; pairs];
        self.probe_send_ref = vec![None; pairs];
        self.probe_chain_ref = vec![None; pairs];
        self.down_ref = vec![None; pairs];
        if self.cfg.batched_monitor {
            // One cycle event drives the whole sweep (stagger does not
            // apply: the point of batching is the single timer).
            io.set_timer(SimDuration::ZERO, token(KIND_CYCLE, NodeId(0), NetId::A, 0));
            return;
        }
        // Arm one repeating probe timer per (peer, net) pair, staggered
        // across the first cycle so the shared medium never sees a burst.
        let pair_count = u64::from(planes) * (self.n - 1) as u64;
        let peers: Vec<NodeId> = self.peers.peers().collect();
        let mut k = 0u64;
        for peer in peers {
            for net in NetId::planes(planes) {
                let offset = if self.cfg.stagger {
                    SimDuration(self.cfg.probe_interval.as_nanos() * k / pair_count)
                } else {
                    SimDuration::ZERO
                };
                io.set_timer(offset, token(KIND_PROBE, peer, net, 0));
                k += 1;
            }
        }
    }

    /// A previously armed timer fired with token `t`.
    pub fn handle_timer(&mut self, io: &mut impl DrsIo, t: u64) {
        self.journal_input(io.now(), DaemonInput::Timer { token: t });
        let (kind, peer, net, payload) = untoken(t);
        match kind {
            KIND_PROBE => {
                let seq = self.send_probe(io, peer, net);
                io.set_timer(
                    self.cfg.probe_timeout,
                    token(KIND_TIMEOUT, peer, net, seq as u64),
                );
                // Links believed down are re-probed at a (configurably)
                // relaxed rate: the outage is already being routed
                // around, so only recovery detection is at stake.
                let interval = if self.peers.state(peer, net) == LinkState::Down {
                    self.cfg
                        .probe_interval
                        .saturating_mul(self.cfg.down_probe_backoff)
                } else {
                    self.cfg.probe_interval
                };
                io.set_timer(interval, token(KIND_PROBE, peer, net, 0));

                // Retry loop for persistently unreachable peers: while both
                // direct links are down, keep re-discovering (rate-limited)
                // so a newly viable gateway is eventually found. Hooked to
                // the net-A probe only, to fire once per cycle per peer.
                if net == NetId::A && self.peers.peer_unreachable_direct(peer) {
                    self.start_discovery(io, peer);
                }
            }
            KIND_TIMEOUT => {
                self.metrics.timeouts += 1;
                let transition =
                    self.peers
                        .probe_timed_out(peer, net, payload as u32, self.cfg.miss_threshold);
                if transition == Transition::WentDown {
                    let sweep = self.record_timeout_sweep(io, peer, net);
                    self.handle_link_down(io, peer, net, sweep);
                }
            }
            KIND_OFFER_WINDOW => self.handle_offer_window(io, peer, payload),
            KIND_CYCLE => self.run_monitor_cycle(io),
            KIND_CYCLE_TIMEOUT => self.sweep_cycle_timeouts(io),
            _ => unreachable!("unknown timer kind {kind}"),
        }
    }

    /// An ICMP echo reply arrived from `from` on `net`.
    pub fn handle_echo_reply(
        &mut self,
        io: &mut impl DrsIo,
        from: NodeId,
        net: NetId,
        id: u32,
        seq: u32,
    ) {
        self.journal_input(io.now(), DaemonInput::EchoReply { from, net, id, seq });
        if id != ECHO_ID {
            return; // someone else's ping
        }
        self.metrics.replies_received += 1;
        let now = io.now();
        // Round-trip of the monitor cycle's probe, measured against the
        // most recent request on this (peer, net) — probes never overlap
        // on a link because the timeout is armed under the interval.
        let idx = self.pair_idx(from, net);
        if let Some(span) = self.probe_spans[idx].as_ref() {
            let rtt = SimDuration(span.elapsed_ns(now.0));
            io.probe_obs_mut().probe_rtt.record(rtt);
        }
        self.last_ok[idx] = Some(now);
        // Flight: a good reply answers the pair's outstanding send and
        // resets the chain tail — future failure chains walk back to
        // *this* record as their last-good anchor.
        let rref = io.flight_record(
            TraceKind::ProbeRecv,
            Some(net),
            u64::from(from.0) << 32 | u64::from(seq),
            self.probe_send_ref[idx],
        );
        if rref.is_some() {
            self.probe_chain_ref[idx] = rref;
        }
        if self.peers.reply_received(from, net, now) == Transition::WentUp {
            self.handle_link_up(io, from, net, rref);
        }
    }

    /// A DRS control message arrived from `from` on `net`.
    pub fn handle_control(&mut self, io: &mut impl DrsIo, from: NodeId, net: NetId, msg: &DrsMsg) {
        self.journal_input(io.now(), DaemonInput::Control { from, net, msg: *msg });
        match *msg {
            DrsMsg::RouteRequest { target, req_id } => {
                self.handle_route_request(io, from, net, target, req_id);
            }
            DrsMsg::RouteOffer { target, req_id } => {
                self.handle_route_offer(io, from, net, target, req_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The daemon's behavioural test suite runs on the DES kernel and
    // lives in `crates/sim/tests/daemon_protocol.rs` — inside this
    // crate's own test build, `drs_sim`'s `Protocol` impl targets the
    // *library* instance of `DrsDaemon`, not the test harness's copy, so
    // kernel-driven scenarios cannot compile here. Only backend-free
    // unit tests belong in this module.

    #[test]
    fn token_roundtrip() {
        for kind in [KIND_PROBE, KIND_TIMEOUT, KIND_OFFER_WINDOW] {
            for peer in [0u32, 1, 4095, (1 << 24) - 1] {
                for net in [NetId::A, NetId::B, NetId(2), NetId(7)] {
                    for payload in [0u64, 1, 0xFF_FFFF] {
                        let t = token(kind, NodeId(peer), net, payload);
                        assert_eq!(untoken(t), (kind, NodeId(peer), net, payload));
                    }
                }
            }
        }
    }
}
