//! DRS daemon configuration.
//!
//! The probe cycle and miss threshold set the **detection latency /
//! bandwidth** trade-off that Figure 1 of the paper quantifies: every
//! `(peer, network)` pair is probed once per cycle, so shorter cycles
//! detect failures faster but consume more of the shared medium.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// How a requester chooses among gateway offers during route discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatewayPolicy {
    /// Install the first offer that arrives (fastest repair; the deployed
    /// behaviour).
    FirstOffer,
    /// Collect offers for a short window, then pick the lowest host id
    /// (deterministic tiebreak; concentrates relay load).
    LowestId,
    /// Collect offers for a short window, then pick uniformly at random
    /// (spreads relay load).
    Random,
}

/// Tunable parameters of one DRS daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrsConfig {
    /// Length of one full probe cycle: every monitored `(peer, net)` pair
    /// is probed once per cycle.
    pub probe_interval: SimDuration,
    /// How long to wait for an echo reply before counting a miss.
    pub probe_timeout: SimDuration,
    /// Consecutive misses before a link is declared down.
    pub miss_threshold: u32,
    /// Spread each cycle's probes evenly across the interval instead of
    /// bursting them all at the cycle boundary (reduces hub contention).
    pub stagger: bool,
    /// Prefer network A over B whenever both direct links are up (the
    /// deployed primary/secondary convention). When `false` the daemon
    /// keeps whichever live direct route it already has.
    pub prefer_primary: bool,
    /// Gateway selection policy for broadcast route discovery.
    pub gateway_policy: GatewayPolicy,
    /// How long to collect gateway offers before deciding (ignored by
    /// [`GatewayPolicy::FirstOffer`]).
    pub offer_window: SimDuration,
    /// Minimum spacing between discovery broadcasts for the same peer.
    pub discovery_backoff: SimDuration,
    /// Probe-interval multiplier for links currently believed **down**:
    /// 1 keeps full-rate probing (the deployed behaviour); larger values
    /// save bandwidth during long outages at the cost of proportionally
    /// slower *recovery* detection. Failure detection is unaffected (it
    /// happens while the link is still Up).
    pub down_probe_backoff: u64,
    /// Drive the whole monitor sweep from **one** per-daemon cycle timer
    /// that fans out every `(peer, net)` probe inline, instead of one
    /// repeating timer per pair. Cuts event-queue traffic per cycle from
    /// `O(K·N)` per daemon (`O(K·N²)` cluster-wide) to `O(1)` per daemon
    /// while sending the byte-identical probe sequence — provided
    /// `stagger` is off and `down_probe_backoff` is 1 (with backoff > 1
    /// the down-link re-probe times quantize to cycle boundaries, and
    /// batching ignores `stagger` entirely). Defaults to the legacy
    /// per-pair timers so existing artifacts stay byte-reproducible.
    pub batched_monitor: bool,
    /// Record every probe send into [`crate::metrics::DrsMetrics`]'s
    /// `probe_log` (time, peer, net, seq). Off by default — the log grows
    /// with the run — and exists so equivalence tests can compare the
    /// exact probe sequence of the batched and per-pair monitors.
    pub record_probe_log: bool,
    /// Record every daemon input (start / timer / echo reply / control,
    /// with its arrival time) and every random gateway pick into a
    /// [`crate::journal::DaemonJournal`]. Off by default — the journal
    /// grows with the run — and exists so the replay backend can re-drive
    /// the daemon offline and byte-compare its decisions.
    pub record_journal: bool,
}

impl Default for DrsConfig {
    fn default() -> Self {
        DrsConfig {
            probe_interval: SimDuration::from_secs(1),
            probe_timeout: SimDuration::from_millis(200),
            miss_threshold: 2,
            stagger: true,
            prefer_primary: true,
            gateway_policy: GatewayPolicy::FirstOffer,
            offer_window: SimDuration::from_millis(10),
            discovery_backoff: SimDuration::from_secs(1),
            down_probe_backoff: 1,
            batched_monitor: false,
            record_probe_log: false,
            record_journal: false,
        }
    }
}

impl DrsConfig {
    /// Sets the probe cycle length.
    ///
    /// # Panics
    /// Panics if the interval is zero or does not exceed the probe
    /// timeout (a cycle must outlive its own probes).
    #[must_use]
    pub fn probe_interval(mut self, d: SimDuration) -> Self {
        assert!(d > SimDuration::ZERO, "probe interval must be positive");
        self.probe_interval = d;
        self.validate();
        self
    }

    /// Sets the per-probe reply timeout.
    #[must_use]
    pub fn probe_timeout(mut self, d: SimDuration) -> Self {
        assert!(d > SimDuration::ZERO, "probe timeout must be positive");
        self.probe_timeout = d;
        self.validate();
        self
    }

    /// Sets the consecutive-miss threshold.
    #[must_use]
    pub fn miss_threshold(mut self, k: u32) -> Self {
        assert!(k >= 1, "at least one miss is required to declare down");
        self.miss_threshold = k;
        self
    }

    /// Enables or disables probe staggering.
    #[must_use]
    pub fn stagger(mut self, on: bool) -> Self {
        self.stagger = on;
        self
    }

    /// Sets the gateway selection policy.
    #[must_use]
    pub fn gateway_policy(mut self, p: GatewayPolicy) -> Self {
        self.gateway_policy = p;
        self
    }

    /// Enables or disables the primary-network preference.
    #[must_use]
    pub fn prefer_primary(mut self, on: bool) -> Self {
        self.prefer_primary = on;
        self
    }

    /// Sets the down-link probe backoff multiplier.
    #[must_use]
    pub fn down_probe_backoff(mut self, k: u64) -> Self {
        assert!(k >= 1, "backoff multiplier must be at least 1");
        self.down_probe_backoff = k;
        self
    }

    /// Enables or disables the batched monitor cycle.
    #[must_use]
    pub fn batched_monitor(mut self, on: bool) -> Self {
        self.batched_monitor = on;
        self
    }

    /// Enables or disables the probe-send log.
    #[must_use]
    pub fn record_probe_log(mut self, on: bool) -> Self {
        self.record_probe_log = on;
        self
    }

    /// Enables or disables input journalling for trace replay.
    #[must_use]
    pub fn record_journal(mut self, on: bool) -> Self {
        self.record_journal = on;
        self
    }

    /// Worst-case time from a fault occurring to the daemon declaring the
    /// link down: the fault can land just after a probe was answered, and
    /// then `miss_threshold` consecutive probes (one per cycle) must time
    /// out.
    #[must_use]
    pub fn worst_case_detection(&self) -> SimDuration {
        self.probe_interval
            .saturating_mul(self.miss_threshold as u64)
            + self.probe_timeout
    }

    fn validate(&self) {
        assert!(
            self.probe_interval > self.probe_timeout,
            "probe interval ({}) must exceed the probe timeout ({})",
            self.probe_interval,
            self.probe_timeout
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let c = DrsConfig::default();
        assert!(c.probe_interval > c.probe_timeout);
        assert!(c.miss_threshold >= 1);
        assert_eq!(
            c.worst_case_detection(),
            SimDuration::from_millis(2200),
            "2 cycles + timeout"
        );
    }

    #[test]
    fn builder_chains() {
        let c = DrsConfig::default()
            .probe_interval(SimDuration::from_millis(500))
            .probe_timeout(SimDuration::from_millis(50))
            .miss_threshold(3)
            .stagger(false)
            .prefer_primary(false)
            .gateway_policy(GatewayPolicy::Random);
        assert_eq!(c.probe_interval, SimDuration::from_millis(500));
        assert_eq!(c.miss_threshold, 3);
        assert!(!c.stagger);
        assert_eq!(c.gateway_policy, GatewayPolicy::Random);
    }

    #[test]
    fn down_probe_backoff_builder() {
        let c = DrsConfig::default().down_probe_backoff(8);
        assert_eq!(c.down_probe_backoff, 8);
    }

    #[test]
    #[should_panic(expected = "backoff multiplier")]
    fn zero_backoff_rejected() {
        let _ = DrsConfig::default().down_probe_backoff(0);
    }

    #[test]
    #[should_panic(expected = "must exceed the probe timeout")]
    fn interval_below_timeout_rejected() {
        let _ = DrsConfig::default().probe_interval(SimDuration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "at least one miss")]
    fn zero_threshold_rejected() {
        let _ = DrsConfig::default().miss_threshold(0);
    }
}
