//! Protocol-side measurement plumbing: latency histograms and the
//! probe-path observability block every [`crate::io::DrsIo`] backend owns.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A log₂-bucketed latency histogram over nanosecond durations.
///
/// Bucket `i` covers durations `d` with `floor(log2(d)) == i` (bucket 0
/// additionally holds zero). 64 buckets cover the entire `u64` range, so
/// recording never saturates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded durations, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            None
        } else {
            Some(SimDuration((self.sum_ns / self.count as u128) as u64))
        }
    }

    /// Smallest recorded duration, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then_some(SimDuration(self.min_ns))
    }

    /// Largest recorded duration, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then_some(SimDuration(self.max_ns))
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 ≤ q ≤ 1),
    /// or `None` if empty. Log₂ buckets make this accurate to a factor of
    /// two — enough to distinguish "sub-second failover" from "three-minute
    /// timeout".
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Some(SimDuration(upper));
            }
        }
        Some(SimDuration(self.max_ns))
    }

    /// The raw per-bucket counts (64 log₂ buckets) — together with
    /// [`LatencyHistogram::count`], [`LatencyHistogram::sum_ns`] and the
    /// min/max these are the parts the observability layer rebuilds its
    /// own histograms from, exactly.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Exact sum of all recorded durations, in nanoseconds.
    #[must_use]
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Per-daemon probe-path observability: the four histograms the unified
/// observability layer tracks for every routing daemon. The I/O backend
/// owns the storage (one [`ProbeObs`] per daemon, reachable through
/// [`crate::io::DrsIo::probe_obs_mut`]) so the protocol records into it
/// without depending on any particular backend, and harvesting merges
/// per-daemon histograms with the same exact, order-independent
/// arithmetic the histograms themselves guarantee.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeObs {
    /// Gap between consecutive probe transmissions to the same
    /// `(peer, net)` — the realized monitor cycle.
    pub probe_gap: LatencyHistogram,
    /// Probe round-trip time: echo request out → valid echo reply in.
    pub probe_rtt: LatencyHistogram,
    /// Failure-detection latency: last healthy reply on a link → the
    /// daemon declaring that link down.
    pub failover_detect: LatencyHistogram,
    /// Repair latency: failure observed → a changed route installed.
    pub reroute_complete: LatencyHistogram,
    /// Probe traffic this daemon originated, in on-wire bytes — echo
    /// requests only; echo auto-replies are accounted by the transport
    /// medium underneath. Together they are the measured side of the
    /// Figure 1 bandwidth budget.
    pub probe_bytes: u64,
}

impl ProbeObs {
    /// Merges another daemon's probe observations into this one.
    pub fn merge(&mut self, other: &ProbeObs) {
        self.probe_gap.merge(&other.probe_gap);
        self.probe_rtt.merge(&other.probe_rtt);
        self.failover_detect.merge(&other.failover_detect);
        self.reroute_complete.merge(&other.reroute_complete);
        self.probe_bytes += other.probe_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_stats() {
        let mut h = LatencyHistogram::new();
        for ms in [1u64, 2, 3, 4] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(SimDuration::from_micros(2500)));
        assert_eq!(h.min(), Some(SimDuration::from_millis(1)));
        assert_eq!(h.max(), Some(SimDuration::from_millis(4)));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn zero_duration_recordable() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(SimDuration::ZERO));
    }

    #[test]
    fn quantile_bounds_sample() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(SimDuration::from_millis(1));
        }
        h.record(SimDuration::from_secs(100));
        let median = h.quantile_upper_bound(0.5).unwrap();
        assert!(median < SimDuration::from_millis(3), "{median}");
        let p100 = h.quantile_upper_bound(1.0).unwrap();
        assert!(p100 >= SimDuration::from_secs(100));
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        a.record(SimDuration::from_millis(1));
        let mut b = LatencyHistogram::new();
        b.record(SimDuration::from_secs(1));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(SimDuration::from_secs(1)));
        assert_eq!(a.min(), Some(SimDuration::from_millis(1)));
    }

    #[test]
    fn probe_obs_merge_combines_all_channels() {
        let mut a = ProbeObs::default();
        a.probe_rtt.record(SimDuration::from_micros(40));
        a.probe_bytes = 74;
        let mut b = ProbeObs::default();
        b.probe_rtt.record(SimDuration::from_micros(60));
        b.failover_detect.record(SimDuration::from_millis(400));
        b.probe_bytes = 148;
        a.merge(&b);
        assert_eq!(a.probe_rtt.count(), 2);
        assert_eq!(a.failover_detect.count(), 1);
        assert_eq!(a.probe_gap.count(), 0);
        assert_eq!(a.probe_bytes, 222);
    }
}
