//! Property-based tests of the DRS daemon's protocol invariants under
//! randomized fault scenarios: loop freedom, detection bounds, route
//! sanity and determinism.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use drs_core::{DrsConfig, DrsDaemon, DrsEventKind, LinkState, ProbeRecord};
use drs_sim::fault::{FaultPlan, SimComponent};
use drs_sim::ids::{NetId, NodeId};
use drs_sim::routes::Route;
use drs_sim::scenario::ClusterSpec;
use drs_sim::time::{SimDuration, SimTime};
use drs_sim::world::World;

fn cfg() -> DrsConfig {
    DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(50))
        .probe_interval(SimDuration::from_millis(200))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Loop freedom: whatever combination of up to five simultaneous
    /// component failures strikes, no forwarded frame ever dies of TTL
    /// exhaustion — DRS's one-hop-gateway discipline cannot cycle.
    #[test]
    fn no_ttl_drops_under_random_faults(seed in any::<u64>(), f in 0usize..6) {
        let n = 8;
        let spec = ClusterSpec::new(n).seed(seed);
        let mut w = World::new(spec, |id| DrsDaemon::new(id, n, cfg()));
        let mut rng = SmallRng::seed_from_u64(seed);
        let (plan, _) = FaultPlan::random_simultaneous(SimTime(1_000_000_000), n, 2, f, &mut rng);
        w.schedule_faults(plan);
        w.run_for(SimDuration::from_secs(4));
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s != d {
                    w.send_app(w.now(), NodeId(s), NodeId(d), 64);
                }
            }
        }
        w.run_for(SimDuration::from_secs(150));
        let ttl_drops: u64 = (0..n as u32).map(|i| w.host(NodeId(i)).counters.dropped_ttl).sum();
        prop_assert_eq!(ttl_drops, 0);
    }

    /// Every surviving daemon detects a NIC failure within the
    /// configured worst-case bound (plus scheduling slack), regardless of
    /// when in the probe cycle the fault lands.
    #[test]
    fn detection_bound_holds_for_any_fault_phase(offset_ms in 0u64..400) {
        let n = 5;
        let c = cfg();
        let spec = ClusterSpec::new(n).seed(7);
        let mut w = World::new(spec, |id| DrsDaemon::new(id, n, c));
        let t0 = SimTime(2_000_000_000 + offset_ms * 1_000_000);
        w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Nic(NodeId(2), NetId::B)));
        w.run_for(SimDuration::from_secs(6));
        for i in (0..n as u32).filter(|&i| i != 2) {
            let det = w.protocol(NodeId(i)).metrics.first_after(t0, |k| {
                matches!(k, DrsEventKind::LinkDown { peer, net }
                    if *peer == NodeId(2) && *net == NetId::B)
            });
            let det = det.unwrap_or_else(|| panic!("daemon {i} missed the fault"));
            prop_assert!(
                det.at - t0 <= c.worst_case_detection() + SimDuration::from_millis(50),
                "daemon {} took {}", i, det.at - t0
            );
        }
    }

    /// Route-table sanity after convergence: every installed direct route
    /// points at a link the daemon believes Up, and every Via route
    /// points at a gateway link believed Up.
    #[test]
    fn routes_consistent_with_beliefs(seed in any::<u64>(), f in 0usize..5) {
        let n = 7;
        let spec = ClusterSpec::new(n).seed(seed);
        let mut w = World::new(spec, |id| DrsDaemon::new(id, n, cfg()));
        let mut rng = SmallRng::seed_from_u64(seed);
        let (plan, _) = FaultPlan::random_simultaneous(SimTime(1_000_000_000), n, 2, f, &mut rng);
        w.schedule_faults(plan);
        w.run_for(SimDuration::from_secs(6));
        for i in 0..n as u32 {
            let node = NodeId(i);
            let daemon = w.protocol(node);
            for (dst, route) in w.host(node).routes.iter() {
                match route {
                    Route::Direct(net) => {
                        // A Direct route on a Down-believed link is only
                        // legitimate when *no* alternative exists (the
                        // daemon keeps the last route rather than none).
                        if daemon.peer_table().state(dst, net) == LinkState::Down {
                            prop_assert!(
                                daemon.peer_table().peer_unreachable_direct(dst),
                                "n{i}->{dst}: direct route on a down link with an alternative"
                            );
                        }
                    }
                    Route::Via { gateway, net } => {
                        prop_assert!(gateway != dst && gateway != node);
                        // Gateway link must be believed Up, unless the
                        // peer is wholly unreachable and this is a relic.
                        if daemon.peer_table().state(gateway, net) == LinkState::Down {
                            prop_assert!(
                                daemon.peer_table().peer_unreachable_direct(dst),
                                "n{i}->{dst}: via {gateway} on a down link"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Full protocol determinism under randomized fault plans.
    #[test]
    fn deterministic_under_random_plans(seed in any::<u64>()) {
        let run = || {
            let n = 6;
            let spec = ClusterSpec::new(n).seed(seed);
            let mut w = World::new(spec, |id| DrsDaemon::new(id, n, cfg()));
            let mut rng = SmallRng::seed_from_u64(seed);
            let plan = FaultPlan::poisson_process(
                SimDuration::from_secs(10),
                SimDuration::from_secs(2),
                SimDuration::from_secs(1),
                n,
                2,
                &mut rng,
            );
            w.schedule_faults(plan);
            w.run_for(SimDuration::from_secs(12));
            (0..n as u32)
                .map(|i| {
                    let m = &w.protocol(NodeId(i)).metrics;
                    (m.probes_sent, m.route_changes, m.link_down_events, m.link_up_events)
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}

// ---------------------------------------------------------------------------
// Batched monitor cycle ≡ per-pair timers: with staggering off and no
// down-link backoff, one fanned-out cycle event must send the exact same
// probe sequence — per plane, per peer, same times, same ICMP seqs — as
// the legacy one-timer-per-pair monitor it replaces, and the cluster must
// converge to identical state.
// ---------------------------------------------------------------------------

/// The observable monitor state of one daemon at the end of a run.
type MonitorSnapshot = (
    Vec<ProbeRecord>,
    (u64, u64, u64, u64, u64, u64),
    Vec<(NodeId, Route)>,
);

fn snapshot(w: &World<DrsDaemon>, n: usize) -> Vec<MonitorSnapshot> {
    (0..n as u32)
        .map(|i| {
            let node = NodeId(i);
            let m = &w.protocol(node).metrics;
            (
                m.probe_log.clone(),
                (
                    m.probes_sent,
                    m.replies_received,
                    m.timeouts,
                    m.link_down_events,
                    m.link_up_events,
                    m.route_changes,
                ),
                w.host(node).routes.iter().collect(),
            )
        })
        .collect()
}

/// Runs the same scenario twice — legacy per-pair timers vs the batched
/// cycle — and returns both end-state snapshots plus per-plane frame
/// counts (identical frame admission order ⇒ identical medium totals).
fn run_both_monitors(
    n: usize,
    planes: u8,
    plan: &FaultPlan,
    secs: u64,
) -> (
    Vec<MonitorSnapshot>,
    Vec<MonitorSnapshot>,
    Vec<u64>,
    Vec<u64>,
) {
    let run = |batched: bool| {
        let c = cfg()
            .stagger(false)
            .record_probe_log(true)
            .batched_monitor(batched);
        let spec = ClusterSpec::new(n).seed(11).planes(planes);
        let mut w = World::new(spec, |id| DrsDaemon::new(id, n, c));
        w.schedule_faults(plan.clone());
        w.run_for(SimDuration::from_secs(secs));
        let frames: Vec<u64> = (0..planes)
            .map(|p| w.medium(NetId(p)).stats.frames)
            .collect();
        (snapshot(&w, n), frames)
    };
    let (legacy, legacy_frames) = run(false);
    let (batched, batched_frames) = run(true);
    (legacy, batched, legacy_frames, batched_frames)
}

#[test]
fn batched_monitor_equivalent_on_healthy_three_plane_cluster() {
    let (legacy, batched, lf, bf) = run_both_monitors(6, 3, &FaultPlan::new(), 4);
    assert_eq!(legacy, batched);
    assert_eq!(lf, bf);
    // Sanity: the log really recorded a full-rate probe stream in
    // (peer-ascending, plane-inner) fan-out order.
    let log = &legacy[0].0;
    assert!(log.len() >= 5 * 3 * 4, "n-1 peers × K planes × ≥4 cycles");
    for cycle in log.chunks(5 * 3) {
        let order: Vec<(u32, usize)> = cycle.iter().map(|p| (p.peer.0, p.net.idx())).collect();
        let mut expect = order.clone();
        expect.sort_unstable();
        assert_eq!(order, expect, "fan-out order is peer-major, plane-minor");
        assert!(
            cycle.iter().all(|p| p.at == cycle[0].at),
            "burst at cycle start"
        );
    }
}

#[test]
fn batched_monitor_equivalent_through_hub_failure_and_repair() {
    let plan = FaultPlan::new()
        .fail_at(SimTime(1_000_000_000), SimComponent::Hub(NetId::A))
        .repair_at(SimTime(3_000_000_000), SimComponent::Hub(NetId::A));
    let (legacy, batched, lf, bf) = run_both_monitors(5, 2, &plan, 6);
    assert_eq!(legacy, batched);
    assert_eq!(lf, bf);
    // The scenario actually exercised the down/up paths.
    assert!(
        legacy.iter().all(|s| s.1 .3 > 0),
        "every daemon saw link-down"
    );
    assert!(
        legacy.iter().all(|s| s.1 .4 > 0),
        "every daemon saw link-up"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Equivalence holds under arbitrary simultaneous component faults,
    /// for any cluster size and redundancy degree the spec supports.
    #[test]
    fn batched_monitor_equivalent_under_random_faults(
        seed in any::<u64>(),
        n in 3usize..7,
        planes in 2u8..4,
        f in 0usize..5,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (plan, _) = FaultPlan::random_simultaneous(
            SimTime(1_000_000_000),
            n,
            planes,
            f,
            &mut rng,
        );
        let (legacy, batched, lf, bf) = run_both_monitors(n, planes, &plan, 5);
        prop_assert_eq!(&legacy, &batched);
        prop_assert_eq!(lf, bf);
        // The probe sequence is never empty: monitoring starts at t=0.
        prop_assert!(legacy.iter().all(|s| !s.0.is_empty()));
    }
}
