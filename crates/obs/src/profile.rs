//! Engine profiling hooks.
//!
//! Hot paths (`analytic::sweep`, `harness::experiment`) accept a
//! `&dyn Profiler` so wall-clock instrumentation can be switched on for a
//! human at a terminal and compiled-in-but-inert everywhere else. The
//! contract that keeps committed artifacts byte-stable: profilers only
//! *observe* phase durations, they never feed data back into the
//! experiment, and [`NullProfiler`] (the default everywhere) records
//! nothing at all. Wall-clock numbers collected by [`WallProfiler`] are
//! non-deterministic by nature and must never be serialized into a
//! committed artifact — print them, don't commit them.

use std::sync::Mutex;
use std::time::Instant;

use crate::registry::MetricsRegistry;

/// A sink for named phase durations. `Sync` because the rayon fan-out
/// reports from worker threads.
pub trait Profiler: Sync {
    /// Whether recording does anything — lets hot paths skip building
    /// labels for a disabled profiler.
    fn enabled(&self) -> bool;

    /// Records that `phase` took `dur_ns` nanoseconds (one sample of a
    /// per-phase histogram).
    fn record(&self, phase: &str, dur_ns: u64);
}

/// The default profiler: discards everything. With this installed the
/// instrumented code paths are observationally identical to the
/// un-instrumented ones — which is what keeps `BENCH_*.json` artifacts
/// byte-unchanged when profiling is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfiler;

impl Profiler for NullProfiler {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _phase: &str, _dur_ns: u64) {}
}

/// A wall-clock profiler: per-phase duration histograms behind a mutex.
///
/// The mutex is on the *reporting* path only (a few hundred nanoseconds
/// per phase, against phases that run for micro- to milliseconds), and
/// histogram merge order cannot matter — so enabling it does not perturb
/// the experiment results, only measures them.
#[derive(Debug, Default)]
pub struct WallProfiler {
    registry: Mutex<MetricsRegistry>,
}

impl WallProfiler {
    /// A profiler with nothing recorded yet.
    #[must_use]
    pub fn new() -> Self {
        WallProfiler::default()
    }

    /// Times `f` on the monotonic wall clock and records the duration
    /// under `phase`.
    pub fn time<R>(&self, phase: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let dur = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.record(phase, dur);
        out
    }

    /// A snapshot of everything recorded so far.
    #[must_use]
    pub fn report(&self) -> MetricsRegistry {
        self.registry
            .lock()
            .expect("profiler mutex poisoned")
            .clone()
    }
}

impl Profiler for WallProfiler {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, phase: &str, dur_ns: u64) {
        self.registry
            .lock()
            .expect("profiler mutex poisoned")
            .record(phase, dur_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_profiler_is_inert() {
        let p = NullProfiler;
        assert!(!p.enabled());
        p.record("anything", 123);
    }

    #[test]
    fn wall_profiler_accumulates_phase_histograms() {
        let p = WallProfiler::new();
        assert!(p.enabled());
        p.record("enumerate", 100);
        p.record("enumerate", 300);
        p.record("serialize", 50);
        let report = p.report();
        let h = report.histogram("enumerate").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(300));
        assert_eq!(report.histogram("serialize").unwrap().count(), 1);
    }

    #[test]
    fn time_returns_the_closure_result_and_records_one_sample() {
        let p = WallProfiler::new();
        let v = p.time("phase", || 6 * 7);
        assert_eq!(v, 42);
        assert_eq!(p.report().histogram("phase").unwrap().count(), 1);
    }

    #[test]
    fn profiler_trait_objects_work_across_threads() {
        let p = WallProfiler::new();
        let profiler: &dyn Profiler = &p;
        std::thread::scope(|s| {
            for i in 0..4u64 {
                s.spawn(move || profiler.record("cell", i + 1));
            }
        });
        assert_eq!(p.report().histogram("cell").unwrap().count(), 4);
    }
}
