//! Log2-bucketed histograms with exact counts and quantile upper bounds.
//!
//! A [`Histogram`] records non-negative `u64` samples (the stack uses
//! nanosecond durations) into 64 power-of-two buckets while keeping the
//! exact `count`, `sum`, `min` and `max`. Quantiles are reported as
//! *upper bounds*: the bucket ceiling of the bucket holding the target
//! sample, tightened to the recorded maximum. Everything is integer
//! arithmetic over fixed-size state, so merging worker histograms is
//! exact, commutative and associative — the property the parallel
//! experiment harness relies on for byte-stable artifacts.

use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// A mergeable log2 histogram of `u64` samples with exact summary stats.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// `buckets[i]` counts samples `v` with `floor(log2(max(v,1))) == i`.
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a sample: `floor(log2(v))`, with 0 mapping to bucket 0.
#[must_use]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`: `2^(i+1) - 1`.
#[must_use]
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in O(1) — the session-weighted
    /// entry point the fluid workload layer uses to charge one
    /// interruption interval to every session that lived through it.
    /// `record_n(v, n)` is exactly equivalent to `n` calls of
    /// `record(v)` (same buckets, count, sum, min, max), so weighted
    /// histograms stay merge-exact. `n = 0` is a no-op.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Reconstructs a histogram from externally maintained parts — the
    /// bridge from sibling log₂ histograms (the simulator keeps its own
    /// per-host latency histograms with identical bucketing) into the
    /// artifact layer. An empty source must pass `min = u64::MAX` and
    /// `max = 0`, matching [`Histogram::default`].
    ///
    /// # Panics
    /// Panics unless `buckets` has exactly [`BUCKETS`] entries summing
    /// to `count`.
    #[must_use]
    pub fn from_parts(buckets: &[u64], count: u64, sum: u128, min: u64, max: u64) -> Self {
        assert_eq!(buckets.len(), BUCKETS, "need one count per bucket");
        assert_eq!(
            buckets.iter().sum::<u64>(),
            count,
            "bucket counts must sum to the sample count"
        );
        let mut h = Histogram {
            buckets: [0; BUCKETS],
            count,
            sum,
            min,
            max,
        };
        h.buckets.copy_from_slice(buckets);
        h
    }

    /// Folds another histogram into this one. Exact: the result is
    /// identical to having recorded both sample streams into one
    /// histogram, in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean of the recorded samples, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound on the `q`-quantile (`0.0 ..= 1.0`): the ceiling of
    /// the bucket containing the `ceil(q · count)`-th smallest sample,
    /// tightened to the recorded maximum. `None` when the histogram is
    /// empty — "no samples" is *not* the same as "0 ns", and callers must
    /// surface the difference (artifacts print `null`, tables print `—`).
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil().max(1.0) as u64).min(self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// The fixed percentile report every artifact row carries.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile_upper_bound(0.50),
            p90: self.quantile_upper_bound(0.90),
            p99: self.quantile_upper_bound(0.99),
            p999: self.quantile_upper_bound(0.999),
        }
    }
}

/// The standard summary of one histogram: exact count/mean/min/max and
/// the `p50/p90/p99/p999` quantile upper bounds. All optional fields are
/// `None` for an empty histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact mean, `None` when empty.
    pub mean: Option<f64>,
    /// Exact minimum, `None` when empty.
    pub min: Option<u64>,
    /// Exact maximum, `None` when empty.
    pub max: Option<u64>,
    /// Upper bound on the median.
    pub p50: Option<u64>,
    /// Upper bound on the 90th percentile.
    pub p90: Option<u64>,
    /// Upper bound on the 99th percentile.
    pub p99: Option<u64>,
    /// Upper bound on the 99.9th percentile.
    pub p999: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_n_equals_n_records() {
        let mut weighted = Histogram::new();
        let mut looped = Histogram::new();
        for (v, n) in [(0u64, 3u64), (7, 1), (1024, 5), (u64::MAX, 2)] {
            weighted.record_n(v, n);
            for _ in 0..n {
                looped.record(v);
            }
        }
        weighted.record_n(99, 0); // no-op
        assert_eq!(weighted, looped);
        assert_eq!(weighted.count(), 11);
    }

    #[test]
    fn empty_histogram_reports_none_everywhere() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile_upper_bound(q), None);
        }
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, None);
    }

    #[test]
    fn zero_samples_are_distinct_from_no_samples() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile_upper_bound(0.5), Some(0));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.mean(), Some(0.0));
    }

    #[test]
    fn exact_stats_track_samples() {
        let mut h = Histogram::new();
        for v in [3u64, 5, 1000, 7, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1015);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(203.0));
    }

    #[test]
    fn quantile_bounds_bracket_the_true_quantiles() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).collect();
        for &v in &samples {
            h.record(v);
        }
        // The true q-quantile of 1..=1000 is ceil(q*1000); the bound must
        // be at least that and no more than its bucket ceiling.
        for (q, true_q) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (0.999, 999)] {
            let bound = h.quantile_upper_bound(q).unwrap();
            assert!(bound >= true_q, "q={q}: bound {bound} < true {true_q}");
            assert!(bound <= bucket_upper_bound(bucket_index(true_q)));
        }
        // p100 is tightened to the exact max.
        assert_eq!(h.quantile_upper_bound(1.0), Some(1000));
    }

    #[test]
    fn bounds_are_tightened_to_the_max() {
        let mut h = Histogram::new();
        h.record(5);
        // Bucket ceiling for 5 is 7, but no sample exceeds 5.
        assert_eq!(h.quantile_upper_bound(0.5), Some(5));
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples: Vec<u64> = (0..200u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9) >> 7)
            .collect();
        let mut whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 3 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, whole);
        assert_eq!(rl, whole);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = Histogram::new();
        h.record(17);
        let snapshot = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, snapshot);
        let mut e = Histogram::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn extreme_samples_stay_exact() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), 2 * u128::from(u64::MAX));
        assert_eq!(h.quantile_upper_bound(1.0), Some(u64::MAX));
        assert_eq!(h.min(), Some(u64::MAX));
    }

    #[test]
    fn from_parts_round_trips_a_recorded_histogram() {
        let mut h = Histogram::new();
        for v in [3u64, 900, 12, 0] {
            h.record(v);
        }
        let rebuilt = Histogram::from_parts(
            &h.buckets,
            h.count(),
            h.sum(),
            h.min().unwrap(),
            h.max().unwrap(),
        );
        assert_eq!(rebuilt, h);
        // Empty round-trip uses the sentinel min/max of the default state.
        let empty = Histogram::from_parts(&[0; BUCKETS], 0, 0, u64::MAX, 0);
        assert_eq!(empty, Histogram::new());
        assert_eq!(empty.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(1), 3);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }
}
