//! Unified observability for the DRS reproduction.
//!
//! The paper's two headline quantities — error-resolution time under a
//! probing-bandwidth budget (Figure 1) and conditional survivability
//! (Equation 1 / Figure 2) — are *measured* claims, so the repo needs
//! one instrumentation vocabulary instead of the fragments that grew in
//! `core::metrics`, `sim::stats` and the harness. This crate is that
//! vocabulary, with nothing heavier than `serde` underneath:
//!
//! * [`Histogram`] — log2-bucketed `u64` samples with exact
//!   `count/sum/min/max` and `p50/p90/p99/p999` *upper bounds*; merges
//!   across rayon workers are exact and order-independent ([`hist`]).
//! * [`MetricsRegistry`] — named counters, gauges (high-water marks) and
//!   histograms over `BTreeMap`s, so reports are deterministic
//!   ([`registry`]).
//! * [`Span`] — manual-clock timers: sim-time for in-world spans,
//!   wall-clock only for engine profiling ([`span`]).
//! * [`Profiler`] / [`NullProfiler`] / [`WallProfiler`] — the hook hot
//!   paths accept; with the null profiler installed the instrumented
//!   code is observationally identical to un-instrumented code, which is
//!   what keeps the committed artifacts byte-stable ([`profile`]).
//! * [`FlightRecorder`] / [`TraceRecord`] — the causal flight recorder:
//!   a bounded ring of sim-time trace records where each record can name
//!   the record that caused it, merged across shards bit-identically at
//!   any thread count ([`flight`]); [`causal`] walks the cause chains
//!   back into per-failover post-mortems and [`to_perfetto`] renders the
//!   merged timeline as Chrome `trace_event` JSON.
//! * [`ObsArtifact`] — the versioned `drs-bench-observability/v2`
//!   serializer in the same deterministic hand-rolled JSON style as the
//!   other committed artifacts ([`artifact`]), built on the shared
//!   artifact JSON dialect ([`jsonfmt`]) every committed `BENCH_*.json`
//!   writer uses.
//!
//! # The clock rule
//!
//! Committed artifacts must be byte-reproducible, so only *simulation*
//! time may reach them. Wall-clock durations ([`WallProfiler`]) exist
//! for humans profiling the engine and stay in console output. [`Span`]
//! enforces the split mechanically: it has no clock of its own, so every
//! reading is injected at the call site where reviewers can see which
//! clock it is.
//!
//! ```
//! use drs_obs::{Histogram, MetricsRegistry, Span};
//!
//! // An in-world span, clocked by simulation time.
//! let span = Span::begin(1_000_000); // t = 1 ms sim-time
//! let mut registry = MetricsRegistry::new();
//! registry.record("failover_detect_ns", span.elapsed_ns(1_450_000));
//!
//! // Worker registries merge deterministically.
//! let mut other = MetricsRegistry::new();
//! other.record("failover_detect_ns", 125_000);
//! registry.merge(&other);
//! let h: &Histogram = registry.histogram("failover_detect_ns").unwrap();
//! assert_eq!(h.count(), 2);
//! assert_eq!(h.max(), Some(450_000));
//! ```

pub mod artifact;
pub mod causal;
pub mod flight;
pub mod hist;
pub mod jsonfmt;
pub mod profile;
pub mod registry;
pub mod span;

pub use artifact::{Field, FieldValue, ObsArtifact, Row, Section, SCHEMA};
pub use causal::{build_post_mortems, Decomposition, PostMortem, PostMortemReport};
pub use flight::{to_perfetto, EventRef, FlightLog, FlightRecorder, TraceKind, TraceRecord};
pub use hist::{Histogram, HistogramSummary};
pub use profile::{NullProfiler, Profiler, WallProfiler};
pub use registry::MetricsRegistry;
pub use span::Span;
