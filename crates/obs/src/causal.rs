//! Post-mortem builder: turns a merged flight log back into the paper's
//! failover narrative.
//!
//! For every [`TraceKind::RerouteComplete`] in a [`FlightLog`], the
//! builder walks the `cause` chain backward — reroute ← decision ←
//! link-down ← timeout sweep ← the probe sends the sweep gave up on ←
//! the last good probe reply — and emits a [`PostMortem`]: the chain in
//! forward (oldest-first) order with per-hop sim-time deltas, plus the
//! kernel loss records that attached to probes on the chain. The
//! decomposition ([`Decomposition`]) recovers the daemon's two latency
//! samples purely from record timestamps, so the bench layer can
//! cross-check flight-derived latencies bucket-for-bucket against the
//! histograms in the observability artifact.

use crate::flight::{EventRef, FlightLog, TraceKind, TraceRecord};
use std::collections::BTreeMap;

/// One failover's reconstructed causal chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostMortem {
    /// The chain oldest-first: anchor (last good reply, when one
    /// exists) … decision, reroute-complete.
    pub chain: Vec<TraceRecord>,
    /// Kernel loss records whose `cause` points at a probe send on the
    /// chain, oldest-first.
    pub losses: Vec<TraceRecord>,
    /// True when the walk ended at a record with `cause: None`; false
    /// when a `cause` ref failed to resolve (evicted or never recorded)
    /// — an *orphaned* chain.
    pub complete: bool,
}

impl PostMortem {
    /// The failover this chain explains (its newest record).
    ///
    /// # Panics
    /// Panics on an empty chain, which the builder never produces.
    #[must_use]
    pub fn head(&self) -> &TraceRecord {
        self.chain.last().expect("post-mortem chains are non-empty")
    }

    /// Number of hops in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// True when the chain has no hops (never produced by the builder).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }

    /// Sim-time deltas between consecutive hops, oldest-first; one
    /// shorter than the chain.
    #[must_use]
    pub fn hop_deltas_ns(&self) -> Vec<u64> {
        self.chain
            .windows(2)
            .map(|w| w[1].time_ns - w[0].time_ns)
            .collect()
    }

    /// Total sim-time the chain spans (first hop to head).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.head().time_ns - self.chain[0].time_ns
    }

    /// First chain record of `kind`, oldest-first.
    #[must_use]
    pub fn first(&self, kind: TraceKind) -> Option<&TraceRecord> {
        self.chain.iter().find(|r| r.kind == kind)
    }

    /// Last chain record of `kind`, oldest-first.
    #[must_use]
    pub fn last(&self, kind: TraceKind) -> Option<&TraceRecord> {
        self.chain.iter().rev().find(|r| r.kind == kind)
    }

    /// Recovers the failover's latency decomposition from timestamps.
    #[must_use]
    pub fn decompose(&self) -> Decomposition {
        let anchor = self.last(TraceKind::ProbeRecv);
        let down = self.last(TraceKind::LinkDown);
        let decision = self.last(TraceKind::FailoverDecision);
        let head = self.head();
        let detect_ns = match (anchor, down) {
            (Some(a), Some(d)) => Some(d.time_ns - a.time_ns),
            _ => None,
        };
        let reroute_ns = (head.kind == TraceKind::RerouteComplete)
            .then(|| decision.map(|d| head.time_ns - d.time_ns))
            .flatten();
        Decomposition {
            detect_ns,
            reroute_ns,
            losses: self.losses.len() as u64,
        }
    }
}

/// A failover's latency split, recovered purely from chain timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomposition {
    /// Last good reply → link declared down. `None` when the chain has
    /// no good-reply anchor (link was never up).
    pub detect_ns: Option<u64>,
    /// Failover decision → new route installed. `None` when the chain
    /// head is not a reroute completion.
    pub reroute_ns: Option<u64>,
    /// Kernel loss records attached to the chain's probes.
    pub losses: u64,
}

/// Everything the builder learned from one log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PostMortemReport {
    /// One post-mortem per reroute completion, in log order.
    pub failovers: Vec<PostMortem>,
    /// Cause refs across the whole log that failed to resolve (evicted
    /// or never recorded). Zero on a complete log.
    pub orphan_refs: u64,
}

impl PostMortemReport {
    /// Chains whose walk reached a causeless root.
    #[must_use]
    pub fn complete_count(&self) -> usize {
        self.failovers.iter().filter(|f| f.complete).count()
    }
}

/// Builds a post-mortem for every reroute completion in the log.
///
/// The walk is pure: it only reads the log, so running it on the merged
/// log of a sharded world gives bit-identical reports at any thread
/// count.
#[must_use]
pub fn build_post_mortems(log: &FlightLog) -> PostMortemReport {
    let index: BTreeMap<EventRef, &TraceRecord> =
        log.records.iter().map(|r| (r.self_ref(), r)).collect();
    // Reverse edges: probe send ref -> loss records blaming it.
    let mut losses_by_cause: BTreeMap<EventRef, Vec<&TraceRecord>> = BTreeMap::new();
    let mut orphan_refs = 0;
    for r in &log.records {
        if let Some(c) = r.cause {
            if !index.contains_key(&c) {
                orphan_refs += 1;
            }
            if r.kind == TraceKind::ProbeLoss {
                losses_by_cause.entry(c).or_default().push(r);
            }
        }
    }

    let mut failovers = Vec::new();
    for r in &log.records {
        if r.kind != TraceKind::RerouteComplete {
            continue;
        }
        let mut chain = vec![*r];
        let mut complete = true;
        let mut cursor = r.cause;
        while let Some(c) = cursor {
            match index.get(&c) {
                Some(rec) => {
                    chain.push(**rec);
                    cursor = rec.cause;
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        chain.reverse();
        let mut losses: Vec<TraceRecord> = chain
            .iter()
            .filter(|hop| hop.kind == TraceKind::ProbeSend)
            .flat_map(|hop| {
                losses_by_cause
                    .get(&hop.self_ref())
                    .into_iter()
                    .flatten()
                    .map(|l| **l)
            })
            .collect();
        losses.sort_by_key(TraceRecord::sort_key);
        failovers.push(PostMortem {
            chain,
            losses,
            complete,
        });
    }
    PostMortemReport {
        failovers,
        orphan_refs,
    }
}

/// Renders one post-mortem as indented text for console reports: one
/// line per hop with the sim-time delta to the previous hop, then the
/// attached losses. Sim-time only, deterministic.
#[must_use]
pub fn render_post_mortem(pm: &PostMortem) -> String {
    let mut out = String::new();
    let mut prev: Option<u64> = None;
    for hop in &pm.chain {
        let delta = prev.map_or_else(String::new, |p| {
            format!("  (+{} ns)", hop.time_ns - p)
        });
        out.push_str(&format!(
            "  {:>12} ns  {:<17} host{} {}{}\n",
            hop.time_ns,
            hop.kind.label(),
            hop.host,
            hop.plane.map_or_else(String::new, |p| format!("plane{p}")),
            delta,
        ));
        prev = Some(hop.time_ns);
    }
    for l in &pm.losses {
        out.push_str(&format!(
            "  {:>12} ns    loss site {} on host{}\n",
            l.time_ns, l.arg, l.host
        ));
    }
    if !pm.complete {
        out.push_str("  [chain orphaned: a cause ref did not resolve]\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::loss_site;

    fn rec(
        t: u64,
        seq: u64,
        kind: TraceKind,
        cause: Option<EventRef>,
    ) -> TraceRecord {
        TraceRecord {
            time_ns: t,
            seq,
            sub: 0,
            kind,
            host: 0,
            plane: Some(0),
            arg: 0,
            cause,
        }
    }

    /// anchor reply -> send1 -> send2 -> sweep -> down -> decision ->
    /// reroute, with one loss blaming send2.
    fn sample_log() -> FlightLog {
        let anchor = rec(1_000, 1, TraceKind::ProbeRecv, None);
        let send1 = rec(2_000, 2, TraceKind::ProbeSend, Some(anchor.self_ref()));
        let send2 = rec(3_000, 3, TraceKind::ProbeSend, Some(send1.self_ref()));
        let mut loss = rec(3_100, 4, TraceKind::ProbeLoss, Some(send2.self_ref()));
        loss.arg = loss_site::HUB_ADMIT;
        let sweep = rec(5_000, 5, TraceKind::TimeoutSweep, Some(send2.self_ref()));
        let mut down = rec(5_000, 5, TraceKind::LinkDown, Some(sweep.self_ref()));
        down.sub = 1;
        let mut decision =
            rec(5_000, 5, TraceKind::FailoverDecision, Some(down.self_ref()));
        decision.sub = 2;
        let mut reroute =
            rec(6_000, 6, TraceKind::RerouteComplete, Some(decision.self_ref()));
        reroute.arg = 1_000;
        FlightLog {
            records: vec![anchor, send1, send2, loss, sweep, down, decision, reroute],
            dropped: 0,
        }
    }

    #[test]
    fn walks_the_full_chain_backward() {
        let report = build_post_mortems(&sample_log());
        assert_eq!(report.failovers.len(), 1);
        assert_eq!(report.orphan_refs, 0);
        let pm = &report.failovers[0];
        assert!(pm.complete);
        assert_eq!(pm.len(), 7);
        assert_eq!(pm.chain[0].kind, TraceKind::ProbeRecv);
        assert_eq!(pm.head().kind, TraceKind::RerouteComplete);
        assert_eq!(pm.losses.len(), 1);
        assert_eq!(pm.total_ns(), 5_000);
        let deltas = pm.hop_deltas_ns();
        assert_eq!(deltas.len(), 6);
        assert_eq!(deltas.iter().sum::<u64>(), 5_000);
    }

    #[test]
    fn decomposition_recovers_the_daemon_samples() {
        let report = build_post_mortems(&sample_log());
        let d = report.failovers[0].decompose();
        assert_eq!(d.detect_ns, Some(4_000), "anchor at 1us, down at 5us");
        assert_eq!(d.reroute_ns, Some(1_000), "decision at 5us, install at 6us");
        assert_eq!(d.losses, 1);
    }

    #[test]
    fn missing_cause_ref_marks_the_chain_orphaned() {
        let mut log = sample_log();
        // Evict the anchor: send1's cause now dangles.
        log.records.retain(|r| r.kind != TraceKind::ProbeRecv);
        let report = build_post_mortems(&log);
        assert_eq!(report.orphan_refs, 1);
        let pm = &report.failovers[0];
        assert!(!pm.complete);
        assert_eq!(pm.chain[0].kind, TraceKind::ProbeSend);
        assert_eq!(report.complete_count(), 0);
        assert_eq!(pm.decompose().detect_ns, None);
    }

    #[test]
    fn renderer_is_deterministic_and_carries_deltas() {
        let report = build_post_mortems(&sample_log());
        let text = render_post_mortem(&report.failovers[0]);
        assert_eq!(text, render_post_mortem(&report.failovers[0]));
        assert!(text.contains("reroute_complete"));
        assert!(text.contains("(+1000 ns)"));
        assert!(text.contains("loss site 1"));
    }
}
