//! The versioned `drs-bench-observability/v2` artifact.
//!
//! Same deterministic hand-rolled JSON discipline as the harness's
//! `drs-bench-sim-survivability/v1` serializer: fixed field order,
//! shortest-round-trip floats with integral values pinned to one decimal
//! and non-finite values as `null`, escaped strings, no JSON library.
//! The artifact is a list of named sections, each a list of rows with
//! named fields — wide enough for percentile tables, per-cell budget
//! accounting and event-count breakdowns without schema churn.
//!
//! `Missing` is a first-class field value precisely so summaries can
//! distinguish "no samples" (`null`) from a measured zero (`0`).

use serde::Serialize;

use crate::hist::Histogram;
use crate::jsonfmt::{finish, json_f64, json_string, preamble};

/// Schema tag written into every observability artifact.
pub const SCHEMA: &str = "drs-bench-observability/v2";

/// One field value in an artifact row.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FieldValue {
    /// An exact count.
    Count(u64),
    /// A real measurement; non-finite serializes as `null`.
    Real(f64),
    /// A short label.
    Text(String),
    /// A value the row could not produce (empty histogram, no samples) —
    /// serializes as `null`, never as a fake zero.
    Missing,
}

/// A named field.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Field {
    /// Stable field name used as the JSON key.
    pub name: &'static str,
    /// The value.
    pub value: FieldValue,
}

/// One row of a section, e.g. one protocol or one `(n, budget)` cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Row identity, unique within its section.
    pub id: String,
    /// Named fields, serialized as a JSON object in this order.
    pub fields: Vec<Field>,
}

impl Row {
    /// An empty row.
    #[must_use]
    pub fn new(id: impl Into<String>) -> Self {
        Row {
            id: id.into(),
            fields: Vec::new(),
        }
    }

    /// Appends an exact count field (builder style).
    #[must_use]
    pub fn count(mut self, name: &'static str, v: u64) -> Self {
        self.fields.push(Field {
            name,
            value: FieldValue::Count(v),
        });
        self
    }

    /// Appends a real-valued field (builder style).
    #[must_use]
    pub fn real(mut self, name: &'static str, v: f64) -> Self {
        self.fields.push(Field {
            name,
            value: FieldValue::Real(v),
        });
        self
    }

    /// Appends a text field (builder style).
    #[must_use]
    pub fn text(mut self, name: &'static str, v: impl Into<String>) -> Self {
        self.fields.push(Field {
            name,
            value: FieldValue::Text(v.into()),
        });
        self
    }

    /// Appends an optional count: `None` serializes as `null`.
    #[must_use]
    pub fn opt_count(mut self, name: &'static str, v: Option<u64>) -> Self {
        self.fields.push(Field {
            name,
            value: v.map_or(FieldValue::Missing, FieldValue::Count),
        });
        self
    }

    /// Appends the standard histogram summary as eight fields:
    /// `count`, `mean_ns`, `min_ns`, `max_ns`, `p50_ns`, `p90_ns`,
    /// `p99_ns`, `p999_ns`. Empty histograms produce `count: 0` and
    /// `null` for everything else — the artifact-level face of the
    /// "no samples ≠ 0 ns" rule.
    #[must_use]
    pub fn hist(self, h: &Histogram) -> Self {
        let s = h.summary();
        let mut row = self.count("count", s.count);
        row.fields.push(Field {
            name: "mean_ns",
            value: s.mean.map_or(FieldValue::Missing, FieldValue::Real),
        });
        row.opt_count("min_ns", s.min)
            .opt_count("max_ns", s.max)
            .opt_count("p50_ns", s.p50)
            .opt_count("p90_ns", s.p90)
            .opt_count("p99_ns", s.p99)
            .opt_count("p999_ns", s.p999)
    }
}

/// A named group of rows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Section {
    /// Section name, e.g. `failover_latency`.
    pub name: String,
    /// Rows in a fixed, caller-chosen order.
    pub rows: Vec<Row>,
}

impl Section {
    /// An empty section.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Section {
            name: name.into(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }
}

/// The whole observability artifact of one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ObsArtifact {
    /// The benchmark master seed the instrumented runs derived from.
    pub seed: u64,
    /// Sections in run order.
    pub sections: Vec<Section>,
}

impl ObsArtifact {
    /// An artifact with no sections yet.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ObsArtifact {
            seed,
            sections: Vec::new(),
        }
    }

    /// Appends one section.
    pub fn push(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// The first section with this name, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Serializes to the `drs-bench-observability/v2` schema —
    /// byte-identical across runs, thread counts and machines for a
    /// fixed artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_with_schema(SCHEMA)
    }

    /// Serializes the same section/row/field shape under a different
    /// schema tag — for sibling artifacts (e.g. the kernel benchmark's
    /// `drs-bench-kernel/v1`) that reuse this container format.
    #[must_use]
    pub fn to_json_with_schema(&self, schema: &str) -> String {
        let mut out = preamble(schema, self.seed, "sections", 4096);
        for (i, sec) in self.sections.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": {},\n", json_string(&sec.name)));
            out.push_str("      \"rows\": [\n");
            for (j, row) in sec.rows.iter().enumerate() {
                out.push_str("        {");
                out.push_str(&format!("\"id\": {}, ", json_string(&row.id)));
                out.push_str("\"fields\": {");
                for (k, f) in row.fields.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {}", f.name, json_field(&f.value)));
                }
                out.push_str(&format!(
                    "}}}}{}\n",
                    if j + 1 < sec.rows.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.sections.len() { "," } else { "" }
            ));
        }
        finish(&mut out);
        out
    }
}

fn json_field(v: &FieldValue) -> String {
    match v {
        FieldValue::Count(c) => c.to_string(),
        FieldValue::Real(r) => json_f64(*r),
        FieldValue::Text(s) => json_string(s),
        FieldValue::Missing => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsArtifact {
        let mut artifact = ObsArtifact::new(42);
        let mut hist = Histogram::new();
        hist.record(1_000);
        hist.record(3_000);
        let mut sec = Section::new("failover_latency");
        sec.push(Row::new("drs").text("protocol", "drs").hist(&hist));
        sec.push(
            Row::new("static")
                .text("protocol", "static")
                .hist(&Histogram::new()),
        );
        artifact.push(sec);
        let mut budget = Section::new("probe_overhead");
        budget.push(
            Row::new("n8_b5")
                .count("n", 8)
                .real("budget_frac", 0.05)
                .real("utilization", 0.049_993)
                .count("within_budget", 1),
        );
        artifact.push(budget);
        artifact
    }

    #[test]
    fn json_shape_is_stable() {
        let json = sample().to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains(&format!("\"schema\": \"{SCHEMA}\"")));
        assert!(json.contains("\"name\": \"failover_latency\""));
        assert!(json.contains("\"id\": \"drs\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"budget_frac\": 0.05"));
        assert!(json.contains("\"within_budget\": 1"));
    }

    #[test]
    fn empty_histograms_serialize_null_not_zero() {
        let json = sample().to_json();
        // The static row: count 0 and null quantiles, never "p50_ns": 0.
        assert!(json.contains(
            "\"count\": 0, \"mean_ns\": null, \"min_ns\": null, \"max_ns\": null, \
             \"p50_ns\": null, \"p90_ns\": null, \"p99_ns\": null, \"p999_ns\": null"
        ));
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn floats_and_strings_follow_house_rules() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.125), "0.125");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{2}"), "\"\\u0002\"");
    }

    #[test]
    fn get_finds_sections_by_name() {
        let artifact = sample();
        assert!(artifact.get("probe_overhead").is_some());
        assert!(artifact.get("absent").is_none());
    }
}
