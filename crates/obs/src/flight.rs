//! The causal flight recorder: a bounded ring of structured trace
//! records where every record can name the record that *caused* it.
//!
//! Histograms answer "how long did failovers take"; the paper's
//! survivability argument needs "*why* did this cluster ride through the
//! hub loss" — which probes were lost, when the timeout fired, which
//! plane the daemon chose. [`TraceRecord`] is that answer's unit: a
//! sim-time-stamped record with a [`TraceKind`], the acting host/plane,
//! a kind-specific argument, and an optional [`EventRef`] pointing at
//! the record that caused it. The simulator records them in dispatch
//! order, so a drained log is already sorted by `(time, seq, sub)` and
//! merges across shards exactly like the kernel's own event log —
//! bit-identical at any thread count.
//!
//! # Identity
//!
//! A record is identified by [`EventRef`] `{time_ns, seq, host, sub}`:
//! the simulation time and kernel event sequence number of the dispatch
//! that produced it, the acting host, and a per-dispatch sub-counter
//! (one kernel event may emit several records — a timeout sweep that
//! declares a link down emits the sweep *and* the down transition).
//! The tuple is unique within one world run and totally ordered, so
//! cause references are stable keys, not indices into a buffer that
//! eviction would invalidate.
//!
//! # Bounding
//!
//! The ring holds at most `capacity` records. When full, the *oldest*
//! record is evicted and counted in [`FlightRecorder::dropped`] — unless
//! it has been pinned as an ancestor of a still-live causal chain head
//! ([`FlightRecorder::pin_chain`]), in which case it is moved to a
//! retained side buffer instead, so a post-mortem can always walk a live
//! chain back to its anchor even on runs long enough to wrap the ring.
//!
//! # The clock rule
//!
//! `time_ns` is *simulation* time, never wall clock — flight logs feed
//! committed artifacts and the Perfetto export, both of which must be
//! byte-reproducible (see the crate docs).

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

/// Stable identity of one trace record: the sim-time and kernel event
/// seq of the dispatch that produced it, the acting host, and the
/// per-dispatch record sub-counter. Totally ordered by `(time, seq,
/// host, sub)` — the same order the merged timeline is sorted in.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct EventRef {
    /// Simulation time of the producing dispatch, in nanoseconds.
    pub time_ns: u64,
    /// Kernel event sequence number of the producing dispatch (the full
    /// packed seq under a sharded kernel).
    pub seq: u64,
    /// Acting host (`u32::MAX` for coordinator/kernel records).
    pub host: u32,
    /// Index of this record among those the dispatch emitted.
    pub sub: u32,
}

/// What a trace record describes. The daemon kinds mirror the paper's
/// failover narrative; the kernel kinds give the Perfetto export its
/// engine tracks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum TraceKind {
    /// A monitor probe left a host. `arg = (peer << 32) | probe_seq`;
    /// cause: the previous probe in the run, or the last good reply.
    ProbeSend,
    /// A probe reply arrived. `arg = (peer << 32) | probe_seq`; cause:
    /// the send it answers.
    ProbeRecv,
    /// A traced probe frame died in the kernel. `arg` is a
    /// [`loss_site`] code; cause: the [`TraceKind::ProbeSend`] that
    /// launched the frame.
    ProbeLoss,
    /// The monitor declared a peer's probes overdue. `arg = peer`;
    /// cause: the probe send it gave up on.
    TimeoutSweep,
    /// The daemon marked a peer link down. `arg` is the detect latency
    /// in ns (`u64::MAX` when the link was never up); cause: the
    /// timeout sweep.
    LinkDown,
    /// The daemon marked a peer link up. `arg = peer`; cause: the probe
    /// receive that revived it.
    LinkUp,
    /// The daemon committed to repairing a route. `arg = (dst << 1) |
    /// mode` with mode 0 = direct failover, 1 = discovery; cause: the
    /// link-down that forced it.
    FailoverDecision,
    /// A pending reroute installed its new route. `arg` is the reroute
    /// latency in ns; cause: the failover decision that opened it.
    RerouteComplete,
    /// A fault plan took a component down. `arg` = component code
    /// (0 = hub, 1 = NIC); host is the NIC's node or `u32::MAX` for a
    /// hub; `plane` = the affected plane.
    Fault,
    /// A fault plan brought a component back. Fields as [`Self::Fault`].
    Repair,
    /// Kernel track: a sharded epoch opened. `arg` = epoch index.
    Epoch,
    /// Kernel track: the barrier merged an epoch's outboxes. `arg` =
    /// intents merged.
    Merge,
    /// Kernel track: a shard crossed an epoch without popping anything.
    /// `host` = shard index.
    Stall,
}

impl TraceKind {
    /// Stable lowercase label (artifact field names, Perfetto events).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::ProbeSend => "probe_send",
            Self::ProbeRecv => "probe_recv",
            Self::ProbeLoss => "probe_loss",
            Self::TimeoutSweep => "timeout_sweep",
            Self::LinkDown => "link_down",
            Self::LinkUp => "link_up",
            Self::FailoverDecision => "failover_decision",
            Self::RerouteComplete => "reroute_complete",
            Self::Fault => "fault",
            Self::Repair => "repair",
            Self::Epoch => "epoch",
            Self::Merge => "merge",
            Self::Stall => "stall",
        }
    }

    /// Every kind, in declaration order (artifact row iteration).
    pub const ALL: [TraceKind; 13] = [
        Self::ProbeSend,
        Self::ProbeRecv,
        Self::ProbeLoss,
        Self::TimeoutSweep,
        Self::LinkDown,
        Self::LinkUp,
        Self::FailoverDecision,
        Self::RerouteComplete,
        Self::Fault,
        Self::Repair,
        Self::Epoch,
        Self::Merge,
        Self::Stall,
    ];
}

/// Where in the kernel a traced probe frame died ([`TraceKind::ProbeLoss`]
/// `arg` codes).
pub mod loss_site {
    /// Sender's NIC was down at transmit time.
    pub const TX_NIC_DOWN: u64 = 0;
    /// The hub was dead when the frame reached the medium.
    pub const HUB_ADMIT: u64 = 1;
    /// The hub died while the frame was in flight.
    pub const HUB_ARRIVAL: u64 = 2;
    /// Receiver's NIC was down at delivery time.
    pub const RX_NIC_DOWN: u64 = 3;
    /// The corruption roll ate the frame at delivery time.
    pub const CORRUPT: u64 = 4;
}

/// One entry in the flight log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation time, nanoseconds.
    pub time_ns: u64,
    /// Kernel event sequence number of the producing dispatch.
    pub seq: u64,
    /// Index among the records this dispatch emitted.
    pub sub: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Acting host (`u32::MAX` for coordinator/kernel records).
    pub host: u32,
    /// Plane the record concerns, when it concerns one.
    pub plane: Option<u8>,
    /// Kind-specific argument (see [`TraceKind`] docs).
    pub arg: u64,
    /// The record that caused this one, when causality is known.
    pub cause: Option<EventRef>,
}

impl TraceRecord {
    /// This record's identity, as other records reference it.
    #[must_use]
    pub fn self_ref(&self) -> EventRef {
        EventRef {
            time_ns: self.time_ns,
            seq: self.seq,
            host: self.host,
            sub: self.sub,
        }
    }

    /// The merge key: records sort by `(time, seq, sub)` within a shard
    /// and by shard index across shards at equal keys.
    #[must_use]
    pub fn sort_key(&self) -> (u64, u64, u32) {
        (self.time_ns, self.seq, self.sub)
    }
}

/// A drained, merged flight log: the sorted records plus how many were
/// evicted unpreserved along the way.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightLog {
    /// Records in `(time, seq, sub)` order (shard index breaking ties).
    pub records: Vec<TraceRecord>,
    /// Records evicted without protection (see [`FlightRecorder`]).
    pub dropped: u64,
}

impl FlightLog {
    /// Merges per-shard logs into one timeline. `logs` must be in shard
    /// order; each shard's records must already be in dispatch order
    /// (which [`FlightRecorder::drain`] guarantees). Drop counters add.
    #[must_use]
    pub fn merge(logs: Vec<FlightLog>) -> FlightLog {
        let mut dropped = 0;
        let mut records: Vec<TraceRecord> = Vec::new();
        for log in logs {
            dropped += log.dropped;
            records.extend(log.records);
        }
        // Stable by construction: equal (time, seq, sub) keys keep
        // shard order, the same tie-break the kernel event log uses.
        records.sort_by_key(TraceRecord::sort_key);
        FlightLog { records, dropped }
    }
}

/// Bounded ring buffer of [`TraceRecord`]s with causal-ancestor
/// protection.
///
/// `record` appends; once `capacity` is reached each append evicts the
/// oldest record — counting it in [`Self::dropped`] — unless that
/// record was pinned via [`Self::pin_chain`], in which case it moves to
/// a retained side buffer and survives the eviction. [`Self::drain`]
/// returns retained + ring merged back into dispatch order.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<TraceRecord>,
    retained: Vec<TraceRecord>,
    /// Protected refs → pin count (chains may share ancestors).
    protected: BTreeMap<EventRef, u32>,
    /// Live chain head → the ancestor refs its pin protects.
    pins: BTreeMap<EventRef, Vec<EventRef>>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` unprotected records.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            retained: Vec::new(),
            protected: BTreeMap::new(),
            pins: BTreeMap::new(),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest unprotected record if the
    /// ring is full.
    pub fn record(&mut self, rec: TraceRecord) {
        while self.ring.len() >= self.capacity {
            // Unwrap is safe: capacity > 0 so the ring is non-empty.
            let oldest = self.ring.pop_front().unwrap();
            if self.protected.contains_key(&oldest.self_ref()) {
                self.retained.push(oldest);
            } else {
                self.dropped += 1;
            }
        }
        self.ring.push_back(rec);
    }

    /// Pins `head` and every ancestor reachable through `cause` links
    /// against eviction, until [`Self::release`]d. Ancestors already
    /// evicted are silently absent (walks stop at the first miss).
    pub fn pin_chain(&mut self, head: EventRef) {
        if self.pins.contains_key(&head) {
            return;
        }
        let mut refs = Vec::new();
        let mut cursor = Some(head);
        while let Some(r) = cursor {
            *self.protected.entry(r).or_insert(0) += 1;
            refs.push(r);
            cursor = self.lookup(r).and_then(|rec| rec.cause);
        }
        self.pins.insert(head, refs);
    }

    /// Releases a chain pinned by [`Self::pin_chain`]; records it was
    /// protecting become ordinary eviction candidates again (ancestors
    /// already moved to the retained buffer stay preserved).
    pub fn release(&mut self, head: EventRef) {
        let Some(refs) = self.pins.remove(&head) else {
            return;
        };
        for r in refs {
            if let Some(count) = self.protected.get_mut(&r) {
                *count -= 1;
                if *count == 0 {
                    self.protected.remove(&r);
                }
            }
        }
    }

    /// Number of records currently held (ring + retained).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len() + self.retained.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted without protection since construction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Finds a held record by identity (linear scan; pinning is a
    /// per-failover operation, not a hot path).
    #[must_use]
    pub fn lookup(&self, r: EventRef) -> Option<&TraceRecord> {
        self.retained
            .iter()
            .chain(self.ring.iter())
            .find(|rec| rec.self_ref() == r)
    }

    /// Drains the recorder into a [`FlightLog`], merging the retained
    /// buffer back into dispatch order.
    #[must_use]
    pub fn drain(&self) -> FlightLog {
        let mut records: Vec<TraceRecord> =
            self.retained.iter().chain(self.ring.iter()).copied().collect();
        records.sort_by_key(TraceRecord::sort_key);
        FlightLog {
            records,
            dropped: self.dropped,
        }
    }
}

/// Renders a merged flight log as Chrome `trace_event` JSON for
/// Perfetto / `chrome://tracing`.
///
/// Layout: one *process* per host (`pid = host + 1`) with one *thread*
/// track per plane (`tid = plane + 1`; plane-less records land on
/// `tid = 0`), plus a kernel process (`pid = 0`) whose tracks carry the
/// sharded engine's epochs, merges and stalls. Every record becomes an
/// instant event (`ph: "i"`) at its sim-time in microseconds; `args`
/// carry the seq/sub identity, the kind-specific argument, and the
/// cause ref, so a failover can be walked visually. Only simulation
/// time is exported — the clock rule holds.
#[must_use]
pub fn to_perfetto(log: &FlightLog) -> String {
    use crate::jsonfmt::{json_f64, json_string};

    const KERNEL_PID: u32 = 0;
    fn pid_tid(rec: &TraceRecord) -> (u32, u32) {
        match rec.kind {
            TraceKind::Epoch => (KERNEL_PID, 1),
            TraceKind::Merge => (KERNEL_PID, 2),
            TraceKind::Stall => (KERNEL_PID, 3),
            _ => {
                let pid = rec.host.saturating_add(1);
                let tid = rec.plane.map_or(0, |p| u32::from(p) + 1);
                (pid, tid)
            }
        }
    }
    fn track_name(pid: u32, tid: u32) -> String {
        if pid == KERNEL_PID {
            match tid {
                1 => "epochs".to_string(),
                2 => "merges".to_string(),
                _ => "stalls".to_string(),
            }
        } else if tid == 0 {
            "host".to_string()
        } else {
            format!("plane{}", tid - 1)
        }
    }

    let mut tracks: BTreeMap<(u32, u32), ()> = BTreeMap::new();
    for rec in &log.records {
        tracks.insert(pid_tid(rec), ());
    }

    let mut out = String::with_capacity(128 + log.records.len() * 160);
    out.push_str("{\n  \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    ");
        out.push_str(&line);
    };

    for &(pid, tid) in tracks.keys() {
        let pname = if pid == KERNEL_PID {
            "kernel".to_string()
        } else {
            format!("host{}", pid - 1)
        };
        push(
            &mut out,
            format!(
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
                 \"args\": {{\"name\": {}}}}}",
                json_string(&pname)
            ),
        );
        push(
            &mut out,
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
                 \"args\": {{\"name\": {}}}}}",
                json_string(&track_name(pid, tid))
            ),
        );
    }

    for rec in &log.records {
        let (pid, tid) = pid_tid(rec);
        let ts = json_f64(rec.time_ns as f64 / 1e3);
        let cause = rec.cause.map_or("null".to_string(), |c| {
            json_string(&format!("{}:{}:{}:{}", c.time_ns, c.seq, c.host, c.sub))
        });
        push(
            &mut out,
            format!(
                "{{\"name\": {}, \"ph\": \"i\", \"s\": \"t\", \"ts\": {ts}, \"pid\": {pid}, \
                 \"tid\": {tid}, \"args\": {{\"seq\": {}, \"sub\": {}, \"arg\": {}, \
                 \"cause\": {cause}}}}}",
                json_string(rec.kind.label()),
                rec.seq,
                rec.sub,
                rec.arg,
            ),
        );
    }

    out.push_str("\n  ],\n  \"displayTimeUnit\": \"ns\"\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, seq: u64, kind: TraceKind, cause: Option<EventRef>) -> TraceRecord {
        TraceRecord {
            time_ns: t,
            seq,
            sub: 0,
            kind,
            host: 0,
            plane: Some(0),
            arg: 0,
            cause,
        }
    }

    #[test]
    fn records_and_drains_in_order() {
        let mut fr = FlightRecorder::new(8);
        fr.record(rec(10, 1, TraceKind::ProbeSend, None));
        fr.record(rec(20, 2, TraceKind::ProbeRecv, None));
        let log = fr.drain();
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.dropped, 0);
        assert!(log.records[0].time_ns < log.records[1].time_ns);
    }

    #[test]
    fn bounded_ring_drops_oldest_and_counts() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..10 {
            fr.record(rec(i * 10, i, TraceKind::ProbeSend, None));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 7);
        let log = fr.drain();
        // The three newest survive.
        let seqs: Vec<u64> = log.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(log.dropped, 7);
    }

    #[test]
    fn pinned_ancestors_survive_eviction() {
        let mut fr = FlightRecorder::new(4);
        // A causal chain: anchor <- send <- sweep.
        let anchor = rec(10, 1, TraceKind::ProbeRecv, None);
        fr.record(anchor);
        let send = rec(20, 2, TraceKind::ProbeSend, Some(anchor.self_ref()));
        fr.record(send);
        let sweep = rec(30, 3, TraceKind::TimeoutSweep, Some(send.self_ref()));
        fr.record(sweep);
        fr.pin_chain(sweep.self_ref());
        // Flood the ring far past capacity.
        for i in 0..20 {
            fr.record(rec(100 + i, 10 + i, TraceKind::ProbeSend, None));
        }
        // The whole pinned chain is still walkable...
        let log = fr.drain();
        let mut cursor = Some(sweep.self_ref());
        let mut hops = 0;
        while let Some(r) = cursor {
            let hit = log.records.iter().find(|x| x.self_ref() == r);
            assert!(hit.is_some(), "pinned ancestor {r:?} was evicted");
            cursor = hit.unwrap().cause;
            hops += 1;
        }
        assert_eq!(hops, 3);
        // ...while unpinned records were dropped and counted.
        assert!(log.dropped > 0);
        assert_eq!(fr.len(), fr.capacity() + 3, "ring full + 3 retained");
        // Drained log stays sorted despite the retained side buffer.
        let mut sorted = log.records.clone();
        sorted.sort_by_key(TraceRecord::sort_key);
        assert_eq!(log.records, sorted);
    }

    #[test]
    fn release_makes_ancestors_evictable_again() {
        let mut fr = FlightRecorder::new(2);
        let a = rec(10, 1, TraceKind::ProbeSend, None);
        fr.record(a);
        fr.pin_chain(a.self_ref());
        fr.release(a.self_ref());
        fr.record(rec(20, 2, TraceKind::ProbeSend, None));
        fr.record(rec(30, 3, TraceKind::ProbeSend, None));
        fr.record(rec(40, 4, TraceKind::ProbeSend, None));
        assert_eq!(fr.dropped(), 2, "released record evicts normally");
        assert_eq!(fr.len(), 2);
    }

    #[test]
    fn shared_ancestors_stay_protected_until_every_pin_releases() {
        let mut fr = FlightRecorder::new(3);
        let root = rec(10, 1, TraceKind::ProbeRecv, None);
        fr.record(root);
        let b = rec(20, 2, TraceKind::TimeoutSweep, Some(root.self_ref()));
        let c = rec(30, 3, TraceKind::TimeoutSweep, Some(root.self_ref()));
        fr.record(b);
        fr.record(c);
        fr.pin_chain(b.self_ref());
        fr.pin_chain(c.self_ref());
        fr.release(b.self_ref());
        for i in 0..6 {
            fr.record(rec(100 + i, 10 + i, TraceKind::ProbeSend, None));
        }
        // Root is still protected through c's pin.
        assert!(fr.lookup(root.self_ref()).is_some());
    }

    #[test]
    fn merge_is_a_stable_keyed_sort() {
        let shard0 = FlightLog {
            records: vec![rec(10, 5, TraceKind::ProbeSend, None), {
                let mut r = rec(30, 7, TraceKind::ProbeRecv, None);
                r.host = 2;
                r
            }],
            dropped: 1,
        };
        let shard1 = FlightLog {
            records: vec![{
                let mut r = rec(10, 5, TraceKind::ProbeSend, None);
                r.host = 9; // same key as shard0's first: shard order breaks the tie
                r
            }],
            dropped: 2,
        };
        let merged = FlightLog::merge(vec![shard0, shard1]);
        assert_eq!(merged.dropped, 3);
        assert_eq!(merged.records.len(), 3);
        assert_eq!(merged.records[0].host, 0);
        assert_eq!(merged.records[1].host, 9);
        assert_eq!(merged.records[2].host, 2);
    }

    #[test]
    fn perfetto_export_is_deterministic_and_sim_time_only() {
        let anchor = rec(1_000, 1, TraceKind::ProbeRecv, None);
        let sweep = rec(51_000, 2, TraceKind::TimeoutSweep, Some(anchor.self_ref()));
        let mut epoch = rec(0, 0, TraceKind::Epoch, None);
        epoch.host = u32::MAX;
        epoch.plane = None;
        let log = FlightLog {
            records: vec![epoch, anchor, sweep],
            dropped: 0,
        };
        let a = to_perfetto(&log);
        let b = to_perfetto(&log);
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"timeout_sweep\""));
        assert!(a.contains("\"ts\": 51.0"), "microsecond timestamps: {a}");
        assert!(a.contains("\"kernel\""));
        assert!(a.contains("\"host0\""));
        assert!(a.contains("\"cause\": \"1000:1:0:0\""));
    }
}
