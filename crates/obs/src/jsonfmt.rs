//! The one JSON dialect every committed artifact speaks.
//!
//! All of the repo's committed `BENCH_*.json` files are hand-serialized —
//! no JSON library — so that the bytes are reproducible on any machine,
//! thread count, or compiler. That only works if every writer agrees on
//! the details, so they live here once:
//!
//! * the **preamble**: `{`, the `schema` tag, the master `seed`, and the
//!   opening of the artifact's single top-level list;
//! * the **closer**: list terminator, `}` and the trailing newline;
//! * **float formatting**: shortest-round-trip `Display`, with integral
//!   values pinned to one decimal (consumers parse a uniform type) and
//!   non-finite values as `null` (`NaN` is not a JSON token);
//! * **string escaping**: quotes, backslashes and control characters.
//!
//! `drs_harness::artifact` re-exports this module for the writers that
//! sit above the harness; [`crate::artifact`] (the observability artifact)
//! uses it directly.

/// Opens an artifact object: schema tag, master seed, and the top-level
/// list under `list_key`, leaving the list open for rows. `capacity` is a
/// buffer size hint (artifacts know roughly how many rows they carry).
#[must_use]
pub fn preamble(schema: &str, seed: u64, list_key: &str, capacity: usize) -> String {
    let mut out = String::with_capacity(capacity);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{schema}\",\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"{list_key}\": [\n"));
    out
}

/// Closes the top-level list and the artifact object, with the trailing
/// newline every committed artifact ends in.
pub fn finish(out: &mut String) {
    out.push_str("  ]\n}\n");
}

/// Canonical float formatting: integral values pinned to one decimal,
/// non-finite values as `null`, everything else shortest-round-trip.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Minimal JSON string escaping for the identifiers and event details the
/// artifacts carry (quotes, backslashes, and control characters).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preamble_and_finish_bracket_an_empty_artifact() {
        let mut out = preamble("demo/v1", 42, "rows", 64);
        finish(&mut out);
        assert_eq!(
            out,
            "{\n  \"schema\": \"demo/v1\",\n  \"seed\": 42,\n  \"rows\": [\n  ]\n}\n"
        );
    }

    #[test]
    fn floats_follow_house_rules() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.125), "0.125");
        assert_eq!(json_f64(-0.0), "-0.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\t\r"), "\"\\t\\r\"");
        assert_eq!(json_string("\u{2}"), "\"\\u0002\"");
    }
}
