//! A named-metric registry: counters, gauges and histograms.
//!
//! One [`MetricsRegistry`] per worker, merged at the end — never shared
//! mutable state — is the concurrency model. All three metric families
//! merge with commutative, associative operations (sum for counters,
//! max for gauges, exact bucket-wise sum for histograms), and storage is
//! `BTreeMap`-keyed so iteration order — and therefore any serialized
//! report — is deterministic regardless of insertion or merge order.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::hist::Histogram;

/// Named counters, gauges and histograms with deterministic merge.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Current value of a counter (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Raises the named gauge to at least `v`. Gauges merge by `max` —
    /// the one gauge combinator that is order-independent across workers,
    /// which is why the registry models high-water marks rather than
    /// last-writer-wins instantaneous values.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if v > *g {
            *g = v;
        }
    }

    /// Current value of a gauge, `None` if never set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one sample into the named histogram (creating it empty).
    pub fn record(&mut self, name: &str, sample: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(sample);
        } else {
            let mut h = Histogram::new();
            h.record(sample);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// The named histogram, if any sample was ever recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds another registry into this one. Commutative and associative
    /// metric-for-metric, so merging K worker registries yields the same
    /// result in any order — and equals having recorded everything into
    /// one registry.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            self.inc(name, *v);
        }
        for (name, v) in &other.gauges {
            self.gauge_max(name, *v);
        }
        for (name, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge(h);
            } else {
                self.histograms.insert(name.clone(), h.clone());
            }
        }
    }

    /// Counters in lexicographic name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauges in lexicographic name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in lexicographic name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("probe_bytes"), 0);
        r.inc("probe_bytes", 74);
        r.inc("probe_bytes", 74);
        assert_eq!(r.counter("probe_bytes"), 148);
    }

    #[test]
    fn gauges_keep_the_high_water_mark() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.gauge("util"), None);
        r.gauge_max("util", 0.05);
        r.gauge_max("util", 0.03);
        assert_eq!(r.gauge("util"), Some(0.05));
        r.gauge_max("util", 0.25);
        assert_eq!(r.gauge("util"), Some(0.25));
    }

    #[test]
    fn histograms_record_and_report() {
        let mut r = MetricsRegistry::new();
        assert!(r.histogram("rtt").is_none());
        r.record("rtt", 100);
        r.record("rtt", 300);
        let h = r.histogram("rtt").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(300));
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        a.inc("sent", 3);
        a.gauge_max("util", 0.1);
        a.record("rtt", 50);
        let mut b = MetricsRegistry::new();
        b.inc("sent", 4);
        b.inc("lost", 1);
        b.gauge_max("util", 0.2);
        b.record("rtt", 500);
        b.record("detect", 9);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("sent"), 7);
        assert_eq!(ab.counter("lost"), 1);
        assert_eq!(ab.gauge("util"), Some(0.2));
        assert_eq!(ab.histogram("rtt").unwrap().count(), 2);

        // Equal to recording everything into one registry.
        let mut whole = MetricsRegistry::new();
        whole.inc("sent", 7);
        whole.inc("lost", 1);
        whole.gauge_max("util", 0.1);
        whole.gauge_max("util", 0.2);
        whole.record("rtt", 50);
        whole.record("rtt", 500);
        whole.record("detect", 9);
        assert_eq!(ab, whole);
    }

    #[test]
    fn iteration_order_is_lexicographic() {
        let mut r = MetricsRegistry::new();
        r.inc("zeta", 1);
        r.inc("alpha", 1);
        r.inc("mid", 1);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }
}
