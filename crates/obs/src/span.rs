//! Manual-clock span timers.
//!
//! A [`Span`] is just a remembered start instant in *some* nanosecond
//! clock — the caller injects the clock on both ends. The rule the whole
//! stack follows:
//!
//! * **in-world spans** are fed simulation time (`SimTime.0`), so their
//!   durations are deterministic and may flow into committed artifacts;
//! * **engine-profiling spans** are fed a monotonic wall clock
//!   (`std::time::Instant` deltas, see [`crate::profile::WallProfiler`])
//!   and must stay in non-committed, human-facing output only.
//!
//! Keeping the clock out of the type is what makes the rule enforceable:
//! a span cannot secretly read wall time, so any nondeterminism has to
//! arrive through an explicit `now` argument at the call site.

use serde::{Deserialize, Serialize};

/// A started timer in a caller-supplied nanosecond clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    start_ns: u64,
}

impl Span {
    /// Starts a span at the caller's current clock reading.
    #[must_use]
    pub fn begin(now_ns: u64) -> Self {
        Span { start_ns: now_ns }
    }

    /// The clock reading the span started at.
    #[must_use]
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Nanoseconds elapsed up to `now_ns` in the same clock. Saturates to
    /// zero if the caller hands a reading from before the start (a merged
    /// or replayed trace), rather than panicking mid-experiment.
    #[must_use]
    pub fn elapsed_ns(&self, now_ns: u64) -> u64 {
        now_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_a_plain_difference() {
        let s = Span::begin(1_000);
        assert_eq!(s.start_ns(), 1_000);
        assert_eq!(s.elapsed_ns(1_000), 0);
        assert_eq!(s.elapsed_ns(4_500), 3_500);
    }

    #[test]
    fn elapsed_saturates_on_clock_regression() {
        let s = Span::begin(1_000);
        assert_eq!(s.elapsed_ns(999), 0);
    }
}
