//! The proactive-vs-reactive comparison harness.
//!
//! Runs the *same* cluster, fault and traffic scenario over any protocol
//! and reports what the application saw: delivery ratio, retransmissions,
//! latency and — the paper's key claim — the length of the
//! application-visible outage after a failure.
//!
//! The scenario shape: let the protocol converge, inject a set of
//! component failures at `t₀`, then send a steady stream of probe
//! messages between a measurement pair and watch when service becomes
//! *promptly* delivered again (a delivery is prompt when it completes
//! well under the transport's first retransmission timeout — i.e. the
//! application never noticed).

use serde::{Deserialize, Serialize};

use drs_sim::app::Workload;
use drs_sim::fault::{FaultPlan, SimComponent};
use drs_sim::ids::{FlowId, NodeId};
use drs_sim::scenario::ClusterSpec;
use drs_sim::time::{SimDuration, SimTime};
use drs_sim::transport::max_flow_lifetime;
use drs_sim::world::{FlowOutcome, Protocol, World};

/// Which protocol produced a result row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolLabel {
    /// The Dynamic Routing System (proactive).
    Drs,
    /// RIP-style distance vector.
    Rip,
    /// OSPF-style link state.
    Ospf,
    /// Reactive failover (repair-on-RTO).
    Reactive,
    /// Static routes, no daemon.
    Static,
}

impl std::fmt::Display for ProtocolLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolLabel::Drs => write!(f, "DRS (proactive)"),
            ProtocolLabel::Rip => write!(f, "RIP-like (reactive)"),
            ProtocolLabel::Ospf => write!(f, "OSPF-like (reactive)"),
            ProtocolLabel::Reactive => write!(f, "repair-on-RTO"),
            ProtocolLabel::Static => write!(f, "static routes"),
        }
    }
}

/// A comparison scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Cluster description.
    pub cluster: ClusterSpec,
    /// Convergence time granted before the fault.
    pub warmup: SimDuration,
    /// Components failed simultaneously at the end of warmup.
    pub faults: Vec<SimComponent>,
    /// Measurement pair (messages flow `src → dst`).
    pub src: NodeId,
    /// Destination of the measurement stream.
    pub dst: NodeId,
    /// Spacing of the measurement stream.
    pub interval: SimDuration,
    /// Number of measurement messages after the fault.
    pub count: usize,
    /// Payload size of each message.
    pub payload: u32,
    /// A delivery faster than this is "prompt": the application never
    /// noticed anything. Must be below the transport's first RTO.
    pub prompt_threshold: SimDuration,
}

impl ScenarioSpec {
    /// A standard scenario: `n`-host cluster, given failures, a 4-per-
    /// second measurement stream of 40 messages between hosts 0 and 1.
    #[must_use]
    pub fn standard(n: usize, seed: u64, faults: Vec<SimComponent>) -> Self {
        ScenarioSpec {
            cluster: ClusterSpec::new(n).seed(seed),
            warmup: SimDuration::from_secs(15),
            faults,
            src: NodeId(0),
            dst: NodeId(1),
            interval: SimDuration::from_millis(250),
            count: 40,
            payload: 256,
            prompt_threshold: SimDuration::from_millis(500),
        }
    }
}

/// What the application experienced in one scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Protocol under test.
    pub label: ProtocolLabel,
    /// Messages sent after the fault.
    pub sent: u64,
    /// Messages delivered end-to-end.
    pub delivered: u64,
    /// Transport retransmissions over the whole run.
    pub retransmits: u64,
    /// Messages abandoned.
    pub gave_up: u64,
    /// Worst delivered latency.
    pub max_latency: Option<SimDuration>,
    /// Application-visible outage: time from the fault until deliveries
    /// become (and remain) prompt. `None` when service never stabilized
    /// within the measurement window.
    pub outage: Option<SimDuration>,
}

impl ScenarioResult {
    /// Delivered fraction of the measurement stream.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

/// Runs one scenario under one protocol.
///
/// The factory builds the per-host daemon; everything else — cluster,
/// faults, measurement stream — comes from the spec, so different
/// protocols see byte-identical conditions.
pub fn run_scenario<P: Protocol>(
    label: ProtocolLabel,
    spec: &ScenarioSpec,
    factory: impl FnMut(NodeId) -> P,
) -> ScenarioResult {
    let mut world = World::new(spec.cluster, factory);
    world.run_for(spec.warmup);
    let t0 = world.now();

    let mut plan = FaultPlan::new();
    for &c in &spec.faults {
        plan = plan.fail_at(t0, c);
    }
    world.schedule_faults(plan);

    // The measurement stream starts one interval after the fault.
    let wl = Workload::periodic_pair(
        spec.src,
        spec.dst,
        t0 + spec.interval,
        spec.interval,
        spec.count,
        spec.payload,
    );
    let flows: Vec<FlowId> = world.schedule_workload(&wl);
    let send_times: Vec<SimTime> = wl.messages().iter().map(|m| m.at).collect();

    // Run until every flow has resolved (worst case: the last message
    // exhausts its full retry budget).
    let horizon = spec.interval.saturating_mul(spec.count as u64 + 1)
        + max_flow_lifetime(&spec.cluster.transport)
        + SimDuration::from_secs(1);
    world.run_for(horizon);

    let stats = world.app_stats();
    let outcomes: Vec<Option<FlowOutcome>> = flows.iter().map(|&f| world.flow_outcome(f)).collect();

    // Outage: completion time of the last non-prompt message (prompt =
    // delivered under the threshold). Zero if everything was prompt.
    let mut outage_end: Option<SimTime> = None;
    let mut stabilized = true;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Some(FlowOutcome::Delivered(rtt)) if *rtt < spec.prompt_threshold => {}
            Some(FlowOutcome::Delivered(rtt)) => {
                outage_end = Some(send_times[i] + *rtt);
            }
            Some(FlowOutcome::GaveUp) | None => {
                stabilized = false;
            }
        }
    }
    let outage = if !stabilized {
        None
    } else {
        Some(outage_end.map_or(SimDuration::ZERO, |end| end.since(t0)))
    };

    ScenarioResult {
        label,
        sent: stats.sent,
        delivered: stats.delivered,
        retransmits: stats.retransmits,
        gave_up: stats.gave_up,
        max_latency: stats.latency.max(),
        outage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactive::{ReactiveConfig, ReactiveDaemon};
    use crate::rip::{RipConfig, RipDaemon};
    use crate::static_route::StaticRouting;
    use drs_core::{DrsConfig, DrsDaemon};
    use drs_sim::ids::NetId;

    fn hub_a_failure(n: usize, seed: u64) -> ScenarioSpec {
        ScenarioSpec::standard(n, seed, vec![SimComponent::Hub(NetId::A)])
    }

    fn fast_drs() -> DrsConfig {
        DrsConfig::default()
            .probe_timeout(SimDuration::from_millis(50))
            .probe_interval(SimDuration::from_millis(200))
    }

    #[test]
    fn drs_outage_is_sub_rto() {
        let spec = hub_a_failure(6, 1);
        let n = spec.cluster.n;
        let r = run_scenario(ProtocolLabel::Drs, &spec, |id| {
            DrsDaemon::new(id, n, fast_drs())
        });
        assert_eq!(r.delivery_ratio(), 1.0, "{r:?}");
        let outage = r.outage.expect("service stabilized");
        // Worst-case detection is 450 ms with the fast config; the first
        // measurement message lands 250 ms after the fault, so it may see
        // one retransmit, but the outage must stay within ~2 s.
        assert!(outage < SimDuration::from_secs(2), "outage {outage}");
    }

    #[test]
    fn static_routing_never_recovers() {
        let spec = hub_a_failure(6, 2);
        let r = run_scenario(ProtocolLabel::Static, &spec, |_| StaticRouting);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.outage, None, "service never stabilized");
    }

    #[test]
    fn reactive_recovers_with_visible_rtos() {
        let spec = hub_a_failure(6, 3);
        let r = run_scenario(ProtocolLabel::Reactive, &spec, |id| {
            ReactiveDaemon::new(id, ReactiveConfig::default())
        });
        assert!(r.delivery_ratio() > 0.9, "{r:?}");
        assert!(r.retransmits >= 1, "reactivity implies visible RTOs");
        let outage = r.outage.expect("service stabilized");
        assert!(
            outage >= SimDuration::from_secs(1),
            "at least one RTO: {outage}"
        );
    }

    #[test]
    fn rip_outage_is_the_timeout_period() {
        let spec = hub_a_failure(4, 4);
        // Compressed RIP (1 s updates / 6 s timeout) to keep the test fast.
        let cfg = RipConfig::default().scaled_down(30);
        let r = run_scenario(ProtocolLabel::Rip, &spec, |id| RipDaemon::new(id, cfg));
        assert!(r.delivery_ratio() > 0.5, "{r:?}");
        let outage = r.outage.expect("service stabilized");
        assert!(
            outage >= SimDuration::from_secs(5),
            "RIP must wait out its timeout: {outage}"
        );
    }

    #[test]
    fn ordering_matches_the_paper() {
        // DRS < reactive < RIP in application-visible outage.
        let n = 5;
        let drs = run_scenario(ProtocolLabel::Drs, &hub_a_failure(n, 5), |id| {
            DrsDaemon::new(id, n, fast_drs())
        });
        let reactive = run_scenario(ProtocolLabel::Reactive, &hub_a_failure(n, 5), |id| {
            ReactiveDaemon::new(id, ReactiveConfig::default())
        });
        let rip_cfg = RipConfig::default().scaled_down(30);
        let rip = run_scenario(ProtocolLabel::Rip, &hub_a_failure(n, 5), |id| {
            RipDaemon::new(id, rip_cfg)
        });
        let (d, re, ri) = (
            drs.outage.unwrap(),
            reactive.outage.unwrap(),
            rip.outage.unwrap(),
        );
        assert!(d < re, "DRS {d} !< reactive {re}");
        assert!(re < ri, "reactive {re} !< RIP {ri}");
    }
}
