//! The proactive-vs-reactive comparison harness.
//!
//! Runs the *same* cluster, fault and traffic scenario over any protocol
//! and reports what the application saw: delivery ratio, retransmissions,
//! latency and — the paper's key claim — the length of the
//! application-visible outage after a failure.
//!
//! The scenario shape: let the protocol converge, inject a set of
//! component failures at `t₀`, then send a steady stream of probe
//! messages between a measurement pair and watch when service becomes
//! *promptly* delivered again (a delivery is prompt when it completes
//! well under the transport's first retransmission timeout — i.e. the
//! application never noticed).

use serde::{Deserialize, Serialize};

use drs_core::{DrsConfig, DrsDaemon, DrsEventKind};
use drs_harness::{
    Experiment, ExperimentRecord, Metric, RunMode, TraceEvent, TraceEventKind, TrialRecord,
    TrialTrace,
};
use drs_sim::app::Workload;
use drs_sim::fault::{FaultPlan, SimComponent};
use drs_sim::ids::{FlowId, NodeId};
use drs_sim::scenario::ClusterSpec;
use drs_sim::stats::{LatencyHistogram, ProbeObs};
use drs_sim::time::{SimDuration, SimTime};
use drs_sim::transport::max_flow_lifetime;
use drs_sim::world::{FlowOutcome, Protocol, World};

use crate::ospf::{OspfConfig, OspfDaemon};
use crate::reactive::{ReactiveConfig, ReactiveDaemon};
use crate::rip::{RipConfig, RipDaemon};
use crate::static_route::StaticRouting;

/// Which protocol produced a result row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolLabel {
    /// The Dynamic Routing System (proactive).
    Drs,
    /// RIP-style distance vector.
    Rip,
    /// OSPF-style link state.
    Ospf,
    /// Reactive failover (repair-on-RTO).
    Reactive,
    /// Static routes, no daemon.
    Static,
}

impl ProtocolLabel {
    /// Every protocol, in the order the shootout tables print them.
    pub const ALL: [ProtocolLabel; 5] = [
        ProtocolLabel::Drs,
        ProtocolLabel::Reactive,
        ProtocolLabel::Ospf,
        ProtocolLabel::Rip,
        ProtocolLabel::Static,
    ];

    /// Stable short key used in trial ids and JSON artifacts.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            ProtocolLabel::Drs => "drs",
            ProtocolLabel::Rip => "rip",
            ProtocolLabel::Ospf => "ospf",
            ProtocolLabel::Reactive => "reactive",
            ProtocolLabel::Static => "static",
        }
    }
}

impl std::fmt::Display for ProtocolLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolLabel::Drs => write!(f, "DRS (proactive)"),
            ProtocolLabel::Rip => write!(f, "RIP-like (reactive)"),
            ProtocolLabel::Ospf => write!(f, "OSPF-like (reactive)"),
            ProtocolLabel::Reactive => write!(f, "repair-on-RTO"),
            ProtocolLabel::Static => write!(f, "static routes"),
        }
    }
}

/// A comparison scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Cluster description.
    pub cluster: ClusterSpec,
    /// Convergence time granted before the fault.
    pub warmup: SimDuration,
    /// Components failed simultaneously at the end of warmup.
    pub faults: Vec<SimComponent>,
    /// Measurement pair (messages flow `src → dst`).
    pub src: NodeId,
    /// Destination of the measurement stream.
    pub dst: NodeId,
    /// Spacing of the measurement stream.
    pub interval: SimDuration,
    /// Number of measurement messages after the fault.
    pub count: usize,
    /// Payload size of each message.
    pub payload: u32,
    /// A delivery faster than this is "prompt": the application never
    /// noticed anything. Must be below the transport's first RTO.
    pub prompt_threshold: SimDuration,
}

impl ScenarioSpec {
    /// A standard scenario: `n`-host cluster, given failures, a 4-per-
    /// second measurement stream of 40 messages between hosts 0 and 1.
    #[must_use]
    pub fn standard(n: usize, seed: u64, faults: Vec<SimComponent>) -> Self {
        ScenarioSpec {
            cluster: ClusterSpec::new(n).seed(seed),
            warmup: SimDuration::from_secs(15),
            faults,
            src: NodeId(0),
            dst: NodeId(1),
            interval: SimDuration::from_millis(250),
            count: 40,
            payload: 256,
            prompt_threshold: SimDuration::from_millis(500),
        }
    }
}

/// What the application experienced in one scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Protocol under test.
    pub label: ProtocolLabel,
    /// Messages sent after the fault.
    pub sent: u64,
    /// Messages delivered end-to-end.
    pub delivered: u64,
    /// Transport retransmissions over the whole run.
    pub retransmits: u64,
    /// Messages abandoned.
    pub gave_up: u64,
    /// Worst delivered latency.
    pub max_latency: Option<SimDuration>,
    /// The full distribution of delivered end-to-end latencies (log₂
    /// buckets) behind `max_latency` — empty when nothing was delivered,
    /// in which case its quantiles report `None`.
    pub latency: LatencyHistogram,
    /// Application-visible outage: time from the fault until deliveries
    /// become (and remain) prompt. `None` when service never stabilized
    /// within the measurement window.
    pub outage: Option<SimDuration>,
}

impl ScenarioResult {
    /// Delivered fraction of the measurement stream.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

/// A finished scenario run before the world is torn down: the result row,
/// the flow-level event trace (still unsealed — more producers may append
/// before it is sorted exactly once), and the world itself so
/// protocol-specific observers (the DRS daemon event log, the probe-path
/// histograms) can be harvested.
struct ScenarioRun<P: Protocol> {
    result: ScenarioResult,
    trace: TrialTrace,
    world: World<P>,
    t0: SimTime,
}

/// Runs one scenario under one protocol, keeping the world alive.
fn run_scenario_inner<P: Protocol>(
    label: ProtocolLabel,
    spec: &ScenarioSpec,
    factory: impl FnMut(NodeId) -> P,
) -> ScenarioRun<P> {
    let mut world = World::new(spec.cluster, factory);
    world.run_for(spec.warmup);
    let t0 = world.now();

    let mut trace = TrialTrace::new();
    let mut plan = FaultPlan::new();
    for &c in &spec.faults {
        plan = plan.fail_at(t0, c);
        trace.record(t0.0, TraceEventKind::FaultInjected, format!("{c:?}"));
    }
    world.schedule_faults(plan);

    // The measurement stream starts one interval after the fault.
    let wl = Workload::periodic_pair(
        spec.src,
        spec.dst,
        t0 + spec.interval,
        spec.interval,
        spec.count,
        spec.payload,
    );
    let flows: Vec<FlowId> = world.schedule_workload(&wl);
    let send_times: Vec<SimTime> = wl.messages().iter().map(|m| m.at).collect();

    // Run until every flow has resolved (worst case: the last message
    // exhausts its full retry budget).
    let horizon = spec.interval.saturating_mul(spec.count as u64 + 1)
        + max_flow_lifetime(&spec.cluster.transport)
        + SimDuration::from_secs(1);
    world.run_for(horizon);

    let stats = world.app_stats();
    let outcomes: Vec<Option<FlowOutcome>> = flows.iter().map(|&f| world.flow_outcome(f)).collect();

    // Outage: completion time of the last non-prompt message (prompt =
    // delivered under the threshold). Zero if everything was prompt.
    let mut outage_end: Option<SimTime> = None;
    let mut stabilized = true;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Some(FlowOutcome::Delivered(rtt)) if *rtt < spec.prompt_threshold => {
                trace.record(
                    (send_times[i] + *rtt).0,
                    TraceEventKind::FlowDelivered,
                    format!("msg {i} rtt {rtt}"),
                );
            }
            Some(FlowOutcome::Delivered(rtt)) => {
                outage_end = Some(send_times[i] + *rtt);
                trace.record(
                    (send_times[i] + *rtt).0,
                    TraceEventKind::FlowDelivered,
                    format!("msg {i} rtt {rtt} (late)"),
                );
            }
            Some(FlowOutcome::GaveUp) | None => {
                stabilized = false;
                trace.record(
                    send_times[i].0,
                    TraceEventKind::FlowGaveUp,
                    format!("msg {i}"),
                );
            }
        }
    }
    let outage = if !stabilized {
        None
    } else {
        Some(outage_end.map_or(SimDuration::ZERO, |end| end.since(t0)))
    };

    let result = ScenarioResult {
        label,
        sent: stats.sent,
        delivered: stats.delivered,
        retransmits: stats.retransmits,
        gave_up: stats.gave_up,
        max_latency: stats.latency.max(),
        latency: stats.latency.clone(),
        outage,
    };
    ScenarioRun {
        result,
        trace,
        world,
        t0,
    }
}

/// Runs one scenario under one protocol.
///
/// The factory builds the per-host daemon; everything else — cluster,
/// faults, measurement stream — comes from the spec, so different
/// protocols see byte-identical conditions.
pub fn run_scenario<P: Protocol>(
    label: ProtocolLabel,
    spec: &ScenarioSpec,
    factory: impl FnMut(NodeId) -> P,
) -> ScenarioResult {
    run_scenario_inner(label, spec, factory).result
}

/// Per-protocol daemon configurations for a dispatched scenario run —
/// one value, five protocols, so a shootout grid carries its tuning as
/// data instead of five hand-written closures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfigs {
    /// DRS daemon configuration.
    pub drs: DrsConfig,
    /// Repair-on-RTO daemon configuration.
    pub reactive: ReactiveConfig,
    /// OSPF-style daemon configuration.
    pub ospf: OspfConfig,
    /// RIP-style daemon configuration.
    pub rip: RipConfig,
}

impl ProtocolConfigs {
    /// The configuration the committed benchmarks run under: DRS probing
    /// at 500 ms sweeps / 100 ms timeout, OSPF and RIP at RFC timers
    /// compressed 10:1 so a single scenario stays short.
    #[must_use]
    pub fn bench_defaults() -> Self {
        ProtocolConfigs {
            drs: DrsConfig::default()
                .probe_timeout(SimDuration::from_millis(100))
                .probe_interval(SimDuration::from_millis(500)),
            reactive: ReactiveConfig::default(),
            ospf: OspfConfig::default().scaled_down(10),
            rip: RipConfig::default().scaled_down(10),
        }
    }
}

/// Runs one scenario under the labelled protocol, dispatching to the
/// right daemon from `cfgs` — the data-driven form of [`run_scenario`].
#[must_use]
pub fn run_protocol(
    label: ProtocolLabel,
    spec: &ScenarioSpec,
    cfgs: &ProtocolConfigs,
) -> ScenarioResult {
    run_protocol_observed(label, spec, cfgs).result
}

/// Everything one observed protocol run hands to the reporting layer.
#[derive(Debug, Clone)]
pub struct ProtocolObservation {
    /// What the application saw.
    pub result: ScenarioResult,
    /// The sealed (time-sorted) structured event trace.
    pub events: Vec<TraceEvent>,
    /// The cluster-merged probe-path record: probe gaps, RTTs, detection
    /// and reroute latencies, and originated probe bytes. The world
    /// charges probe bytes for any echo-using protocol; the latency
    /// histograms are populated only by daemons that record into them
    /// (today: DRS), so for the others they are empty and their quantiles
    /// report `None`.
    pub probe_obs: ProbeObs,
}

/// [`run_protocol`] plus the trial's structured event trace: fault
/// injections and flow outcomes for every protocol, and for DRS also the
/// source daemon's internal transitions (link state, route changes,
/// discovery) translated into the harness vocabulary.
#[must_use]
pub fn run_protocol_traced(
    label: ProtocolLabel,
    spec: &ScenarioSpec,
    cfgs: &ProtocolConfigs,
) -> (ScenarioResult, Vec<TraceEvent>) {
    let o = run_protocol_observed(label, spec, cfgs);
    (o.result, o.events)
}

/// [`run_protocol_traced`] plus the probe-path observability harvest —
/// the full form the shootout and the observability benchmark run.
///
/// Event producers append in whatever order is natural to them; the trace
/// is sorted exactly once, when the [`TrialTrace`] is sealed here.
#[must_use]
pub fn run_protocol_observed(
    label: ProtocolLabel,
    spec: &ScenarioSpec,
    cfgs: &ProtocolConfigs,
) -> ProtocolObservation {
    let n = spec.cluster.n;
    let (result, trace, probe_obs) = match label {
        ProtocolLabel::Drs => {
            let cfg = cfgs.drs;
            let run = run_scenario_inner(label, spec, |id| DrsDaemon::new(id, n, cfg));
            let mut trace = run.trace;
            trace.extend(
                run.world
                    .protocol(spec.src)
                    .metrics
                    .events
                    .iter()
                    .filter(|e| e.at >= run.t0)
                    .map(|e| drs_trace_event(e.at, &e.kind)),
            );
            (run.result, trace, run.world.merged_probe_obs())
        }
        ProtocolLabel::Reactive => {
            let cfg = cfgs.reactive;
            let run = run_scenario_inner(label, spec, |id| ReactiveDaemon::new(id, cfg));
            (run.result, run.trace, run.world.merged_probe_obs())
        }
        ProtocolLabel::Ospf => {
            let cfg = cfgs.ospf;
            let run = run_scenario_inner(label, spec, |id| OspfDaemon::new(id, cfg));
            (run.result, run.trace, run.world.merged_probe_obs())
        }
        ProtocolLabel::Rip => {
            let cfg = cfgs.rip;
            let run = run_scenario_inner(label, spec, |id| RipDaemon::new(id, cfg));
            (run.result, run.trace, run.world.merged_probe_obs())
        }
        ProtocolLabel::Static => {
            let run = run_scenario_inner(label, spec, |_| StaticRouting);
            (run.result, run.trace, run.world.merged_probe_obs())
        }
    };
    ProtocolObservation {
        result,
        events: trace.seal(),
        probe_obs,
    }
}

/// Translates one DRS daemon event into the harness trace vocabulary.
#[must_use]
pub fn drs_trace_event(at: SimTime, kind: &DrsEventKind) -> TraceEvent {
    match kind {
        DrsEventKind::LinkDown { peer, net } => TraceEvent::new(
            at.0,
            TraceEventKind::LinkDown,
            format!("peer {peer} net {net}"),
        ),
        DrsEventKind::LinkUp { peer, net } => TraceEvent::new(
            at.0,
            TraceEventKind::LinkUp,
            format!("peer {peer} net {net}"),
        ),
        DrsEventKind::RouteChanged { dst, route } => TraceEvent::new(
            at.0,
            TraceEventKind::RouteChanged,
            format!("{dst} -> {route:?}"),
        ),
        DrsEventKind::DiscoveryStarted { target } => TraceEvent::new(
            at.0,
            TraceEventKind::DiscoveryStarted,
            format!("target {target}"),
        ),
        DrsEventKind::DiscoveryFailed { target } => TraceEvent::new(
            at.0,
            TraceEventKind::DiscoveryFailed,
            format!("target {target}"),
        ),
    }
}

/// A named scenario of a shootout grid.
#[derive(Debug, Clone)]
pub struct NamedScenario {
    /// Stable scenario key used in trial ids.
    pub name: &'static str,
    /// The scenario itself. Its cluster seed is a placeholder — the
    /// shootout overrides it with the trial's derived seed.
    pub spec: ScenarioSpec,
}

/// The three standard failure scenarios of the proactive-vs-reactive
/// study: primary hub loss, destination NIC loss, and crossed NIC
/// failures that force gateway relaying.
#[must_use]
pub fn standard_shootout_scenarios(n: usize) -> Vec<NamedScenario> {
    use drs_sim::ids::NetId;
    vec![
        NamedScenario {
            name: "hub_a",
            spec: ScenarioSpec::standard(n, 0, vec![SimComponent::Hub(NetId::A)]),
        },
        NamedScenario {
            name: "dst_nic",
            spec: ScenarioSpec::standard(n, 0, vec![SimComponent::Nic(NodeId(1), NetId::A)]),
        },
        NamedScenario {
            name: "crossed_nics",
            spec: ScenarioSpec::standard(
                n,
                0,
                vec![
                    SimComponent::Nic(NodeId(0), NetId::B),
                    SimComponent::Nic(NodeId(1), NetId::A),
                ],
            ),
        },
    ]
}

/// One row of a completed shootout: a scenario × protocol trial.
#[derive(Debug, Clone)]
pub struct ShootoutRow {
    /// Scenario key ([`NamedScenario::name`]).
    pub scenario: &'static str,
    /// Protocol under test.
    pub label: ProtocolLabel,
    /// The derived per-trial seed the cluster ran under.
    pub seed: u64,
    /// What the application saw.
    pub result: ScenarioResult,
    /// The trial's structured event trace.
    pub events: Vec<TraceEvent>,
    /// The trial's cluster-merged probe-path observability record.
    pub probe_obs: ProbeObs,
}

/// Runs the full scenario × protocol grid as one
/// [`drs_harness::Experiment`]: each trial gets its own derived cluster
/// seed, trials fan out across the rayon pool under
/// [`RunMode::Parallel`], and rows come back in grid order (scenario-
/// major) identically in both modes.
#[must_use]
pub fn run_shootout(
    master_seed: u64,
    scenarios: &[NamedScenario],
    labels: &[ProtocolLabel],
    cfgs: &ProtocolConfigs,
    mode: RunMode,
) -> Vec<ShootoutRow> {
    let grid: Vec<(usize, usize)> = (0..scenarios.len())
        .flat_map(|s| (0..labels.len()).map(move |l| (s, l)))
        .collect();
    let exp = Experiment::with_trials("protocol-shootout", master_seed, grid);
    exp.run(mode, |ctx, &(s, l)| {
        let scenario = &scenarios[s];
        let label = labels[l];
        let mut spec = scenario.spec.clone();
        spec.cluster = spec.cluster.seed(ctx.seed);
        let o = run_protocol_observed(label, &spec, cfgs);
        ShootoutRow {
            scenario: scenario.name,
            label,
            seed: ctx.seed,
            result: o.result,
            events: o.events,
            probe_obs: o.probe_obs,
        }
    })
}

/// Folds shootout rows into the artifact form: one
/// [`TrialRecord`] per row, id `scenario/protocol`, with the application
/// counters as metrics and the event trace attached.
#[must_use]
pub fn shootout_record(master_seed: u64, rows: &[ShootoutRow]) -> ExperimentRecord {
    let trials = rows
        .iter()
        .map(|row| {
            let r = &row.result;
            let mut rec =
                TrialRecord::new(format!("{}/{}", row.scenario, row.label.key()), row.seed)
                    .metric(Metric::count("sent", r.sent))
                    .metric(Metric::count("delivered", r.delivered))
                    .metric(Metric::count("retransmits", r.retransmits))
                    .metric(Metric::count("gave_up", r.gave_up))
                    .metric(Metric::real("delivery_ratio", r.delivery_ratio()));
            rec = rec.metric(match r.max_latency {
                Some(d) => Metric::count("max_latency_ns", d.0),
                None => Metric::missing("max_latency_ns"),
            });
            rec = rec.metric(match r.outage {
                Some(d) => Metric::count("outage_ns", d.0),
                None => Metric::missing("outage_ns"),
            });
            rec.with_events(row.events.clone())
        })
        .collect();
    ExperimentRecord {
        name: "protocol-shootout".to_string(),
        master_seed,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactive::{ReactiveConfig, ReactiveDaemon};
    use crate::rip::{RipConfig, RipDaemon};
    use crate::static_route::StaticRouting;
    use drs_core::{DrsConfig, DrsDaemon};
    use drs_sim::ids::NetId;

    fn hub_a_failure(n: usize, seed: u64) -> ScenarioSpec {
        ScenarioSpec::standard(n, seed, vec![SimComponent::Hub(NetId::A)])
    }

    fn fast_drs() -> DrsConfig {
        DrsConfig::default()
            .probe_timeout(SimDuration::from_millis(50))
            .probe_interval(SimDuration::from_millis(200))
    }

    #[test]
    fn drs_outage_is_sub_rto() {
        let spec = hub_a_failure(6, 1);
        let n = spec.cluster.n;
        let r = run_scenario(ProtocolLabel::Drs, &spec, |id| {
            DrsDaemon::new(id, n, fast_drs())
        });
        assert_eq!(r.delivery_ratio(), 1.0, "{r:?}");
        let outage = r.outage.expect("service stabilized");
        // Worst-case detection is 450 ms with the fast config; the first
        // measurement message lands 250 ms after the fault, so it may see
        // one retransmit, but the outage must stay within ~2 s.
        assert!(outage < SimDuration::from_secs(2), "outage {outage}");
    }

    #[test]
    fn static_routing_never_recovers() {
        let spec = hub_a_failure(6, 2);
        let r = run_scenario(ProtocolLabel::Static, &spec, |_| StaticRouting);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.outage, None, "service never stabilized");
    }

    #[test]
    fn reactive_recovers_with_visible_rtos() {
        let spec = hub_a_failure(6, 3);
        let r = run_scenario(ProtocolLabel::Reactive, &spec, |id| {
            ReactiveDaemon::new(id, ReactiveConfig::default())
        });
        assert!(r.delivery_ratio() > 0.9, "{r:?}");
        assert!(r.retransmits >= 1, "reactivity implies visible RTOs");
        let outage = r.outage.expect("service stabilized");
        assert!(
            outage >= SimDuration::from_secs(1),
            "at least one RTO: {outage}"
        );
    }

    #[test]
    fn rip_outage_is_the_timeout_period() {
        let spec = hub_a_failure(4, 4);
        // Compressed RIP (1 s updates / 6 s timeout) to keep the test fast.
        let cfg = RipConfig::default().scaled_down(30);
        let r = run_scenario(ProtocolLabel::Rip, &spec, |id| RipDaemon::new(id, cfg));
        assert!(r.delivery_ratio() > 0.5, "{r:?}");
        let outage = r.outage.expect("service stabilized");
        assert!(
            outage >= SimDuration::from_secs(5),
            "RIP must wait out its timeout: {outage}"
        );
    }

    #[test]
    fn dispatch_matches_hand_built_factories() {
        let spec = hub_a_failure(5, 9);
        let n = spec.cluster.n;
        let cfgs = ProtocolConfigs {
            drs: fast_drs(),
            ..ProtocolConfigs::bench_defaults()
        };
        let via_dispatch = run_protocol(ProtocolLabel::Drs, &spec, &cfgs);
        let via_factory = run_scenario(ProtocolLabel::Drs, &spec, |id| {
            DrsDaemon::new(id, n, fast_drs())
        });
        assert_eq!(via_dispatch.sent, via_factory.sent);
        assert_eq!(via_dispatch.delivered, via_factory.delivered);
        assert_eq!(via_dispatch.outage, via_factory.outage);
    }

    #[test]
    fn traced_drs_run_tells_the_failover_story() {
        let spec = hub_a_failure(5, 11);
        let cfgs = ProtocolConfigs {
            drs: fast_drs(),
            ..ProtocolConfigs::bench_defaults()
        };
        let (r, events) = run_protocol_traced(ProtocolLabel::Drs, &spec, &cfgs);
        assert_eq!(r.delivery_ratio(), 1.0, "{r:?}");
        let kind_count =
            |k: drs_harness::TraceEventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(kind_count(drs_harness::TraceEventKind::FaultInjected), 1);
        assert!(
            kind_count(drs_harness::TraceEventKind::RouteChanged) >= 1,
            "DRS must reroute after the hub failure"
        );
        assert_eq!(
            kind_count(drs_harness::TraceEventKind::FlowDelivered) as u64,
            r.delivered
        );
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn observed_run_harvests_probe_path_and_latency() {
        let spec = hub_a_failure(5, 13);
        let cfgs = ProtocolConfigs {
            drs: fast_drs(),
            ..ProtocolConfigs::bench_defaults()
        };
        let drs = run_protocol_observed(ProtocolLabel::Drs, &spec, &cfgs);
        let obs = &drs.probe_obs;
        assert!(obs.probe_bytes > 0, "DRS must have originated probes");
        assert!(obs.probe_rtt.count() > 0);
        assert!(
            obs.failover_detect.count() >= 1,
            "the hub failure must be detected"
        );
        assert_eq!(
            drs.result.latency.count(),
            drs.result.delivered,
            "one latency sample per delivered message"
        );
        assert_eq!(drs.result.latency.max(), drs.result.max_latency);
        assert!(drs.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));

        // Static routing probes nothing and (here) delivers nothing, so
        // every channel is empty and quantiles honestly report None.
        let st = run_protocol_observed(ProtocolLabel::Static, &spec, &cfgs);
        assert_eq!(st.probe_obs.probe_bytes, 0);
        assert_eq!(st.probe_obs.probe_rtt.count(), 0);
        assert_eq!(st.result.latency.count(), 0);
        assert_eq!(st.result.latency.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn shootout_is_mode_independent_and_grid_ordered() {
        let scenarios = vec![NamedScenario {
            name: "hub_a",
            spec: hub_a_failure(4, 0),
        }];
        let labels = [ProtocolLabel::Drs, ProtocolLabel::Static];
        let cfgs = ProtocolConfigs {
            drs: fast_drs(),
            ..ProtocolConfigs::bench_defaults()
        };
        let serial = run_shootout(3, &scenarios, &labels, &cfgs, RunMode::Serial);
        let parallel = run_shootout(3, &scenarios, &labels, &cfgs, RunMode::Parallel);
        assert_eq!(serial.len(), 2);
        assert_eq!(serial[0].label, ProtocolLabel::Drs);
        assert_eq!(serial[1].label, ProtocolLabel::Static);
        assert_eq!(
            shootout_record(3, &serial).trials,
            shootout_record(3, &parallel).trials
        );
        // Different trials run under different derived seeds.
        assert_ne!(serial[0].seed, serial[1].seed);
    }

    #[test]
    fn ordering_matches_the_paper() {
        // DRS < reactive < RIP in application-visible outage.
        let n = 5;
        let drs = run_scenario(ProtocolLabel::Drs, &hub_a_failure(n, 5), |id| {
            DrsDaemon::new(id, n, fast_drs())
        });
        let reactive = run_scenario(ProtocolLabel::Reactive, &hub_a_failure(n, 5), |id| {
            ReactiveDaemon::new(id, ReactiveConfig::default())
        });
        let rip_cfg = RipConfig::default().scaled_down(30);
        let rip = run_scenario(ProtocolLabel::Rip, &hub_a_failure(n, 5), |id| {
            RipDaemon::new(id, rip_cfg)
        });
        let (d, re, ri) = (
            drs.outage.unwrap(),
            reactive.outage.unwrap(),
            rip.outage.unwrap(),
        );
        assert!(d < re, "DRS {d} !< reactive {re}");
        assert!(re < ri, "reactive {re} !< RIP {ri}");
    }
}
