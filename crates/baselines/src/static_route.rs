//! The no-daemon baseline: static routes on the primary network.

use drs_sim::world::Protocol;

/// Static routing: the kernel's default table (direct routes on network
/// A) is never touched. Any failure on the primary path is permanent from
/// the application's point of view.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticRouting;

impl Protocol for StaticRouting {
    type Msg = ();
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::fault::{FaultPlan, SimComponent};
    use drs_sim::ids::{NetId, NodeId};
    use drs_sim::scenario::ClusterSpec;
    use drs_sim::time::{SimDuration, SimTime};
    use drs_sim::world::World;

    #[test]
    fn healthy_cluster_delivers() {
        let mut w = World::new(ClusterSpec::new(4).seed(1), |_| StaticRouting);
        w.send_app(SimTime(0), NodeId(0), NodeId(3), 128);
        w.run_for(SimDuration::from_secs(2));
        assert_eq!(w.app_stats().delivered, 1);
    }

    #[test]
    fn primary_hub_failure_is_fatal() {
        let mut w = World::new(ClusterSpec::new(4).seed(1), |_| StaticRouting);
        w.schedule_faults(FaultPlan::new().fail_at(SimTime(0), SimComponent::Hub(NetId::A)));
        w.send_app(SimTime(1000), NodeId(0), NodeId(3), 128);
        w.run_for(SimDuration::from_secs(300));
        assert_eq!(w.app_stats().delivered, 0);
        assert_eq!(w.app_stats().gave_up, 1);
        // The redundant network exists but nothing ever uses it.
        assert_eq!(w.medium(NetId::B).stats.frames, 0);
    }
}
