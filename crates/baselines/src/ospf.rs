//! An OSPF-style link-state daemon (after RFC 2328), adapted to the
//! dual-network cluster.
//!
//! Each router broadcasts **hello** packets on both networks every
//! `hello_interval` (RFC: 10 s) and declares a neighbour adjacency dead
//! after `dead_interval` (RFC: 40 s) of silence. Adjacency changes
//! trigger origination of a new **link-state advertisement** describing
//! the router's live adjacencies, flooded cluster-wide; every router
//! recomputes routes from its link-state database (on this two-segment
//! topology the shortest-path tree degenerates to: direct if adjacent,
//! else via the lowest-id adjacent router that advertises adjacency to
//! the target).
//!
//! Like RIP it is *reactive*: failures are discovered only by hello
//! silence, so recovery takes the dead interval plus a flood — faster
//! than RIP's 180 s route timeout, still far behind DRS's probe cycle.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use drs_sim::ids::{NetId, NodeId};
use drs_sim::routes::Route;
use drs_sim::time::{SimDuration, SimTime};
use drs_sim::world::{Ctx, Protocol};

const TICK_TOKEN: u64 = 1;

/// OSPF daemon tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OspfConfig {
    /// Hello broadcast period (RFC 2328: 10 s).
    pub hello_interval: SimDuration,
    /// Silence before an adjacency is torn down (RFC 2328: 40 s).
    pub dead_interval: SimDuration,
}

impl Default for OspfConfig {
    fn default() -> Self {
        OspfConfig {
            hello_interval: SimDuration::from_secs(10),
            dead_interval: SimDuration::from_secs(40),
        }
    }
}

impl OspfConfig {
    /// Divides both timers by `k`, preserving the RFC 1:4 ratio.
    #[must_use]
    pub fn scaled_down(self, k: u64) -> Self {
        assert!(k >= 1);
        OspfConfig {
            hello_interval: self.hello_interval.div(k),
            dead_interval: self.dead_interval.div(k),
        }
    }
}

/// OSPF control messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OspfMsg {
    /// Periodic neighbour-liveness broadcast.
    Hello,
    /// A router's link-state advertisement: its live adjacencies.
    Lsa {
        /// Originating router.
        origin: NodeId,
        /// Monotone per-origin sequence (newer wins).
        seq: u64,
        /// The origin's live `(neighbour, network)` adjacencies.
        adjacencies: Vec<(NodeId, NetId)>,
    },
}

/// One host's OSPF-style daemon.
#[derive(Debug, Clone)]
pub struct OspfDaemon {
    id: NodeId,
    cfg: OspfConfig,
    /// `(peer, net) → last hello heard`.
    last_heard: HashMap<(NodeId, NetId), SimTime>,
    /// Link-state database: `origin → (seq, adjacencies)`.
    lsdb: HashMap<NodeId, (u64, Vec<(NodeId, NetId)>)>,
    own_seq: u64,
    own_adjacencies: Vec<(NodeId, NetId)>,
    /// LSAs this daemon originated.
    pub lsas_originated: u64,
    /// LSAs flooded onward for other routers.
    pub lsas_flooded: u64,
    /// Hello broadcasts sent.
    pub hellos_sent: u64,
}

impl OspfDaemon {
    /// An OSPF daemon for host `id`.
    #[must_use]
    pub fn new(id: NodeId, cfg: OspfConfig) -> Self {
        OspfDaemon {
            id,
            cfg,
            last_heard: HashMap::new(),
            lsdb: HashMap::new(),
            own_seq: 0,
            own_adjacencies: Vec::new(),
            lsas_originated: 0,
            lsas_flooded: 0,
            hellos_sent: 0,
        }
    }

    /// The daemon's current live adjacency list (sorted, deduped).
    fn live_adjacencies(&self, now: SimTime) -> Vec<(NodeId, NetId)> {
        let mut adj: Vec<(NodeId, NetId)> = self
            .last_heard
            .iter()
            .filter(|(_, &heard)| now.since(heard) <= self.cfg.dead_interval)
            .map(|(&k, _)| k)
            .collect();
        adj.sort_by_key(|&(p, net)| (p.0, net.idx()));
        adj
    }

    fn lsa_wire_bytes(adjacencies: usize) -> u32 {
        48 + 12 * adjacencies as u32
    }

    fn originate_if_changed(&mut self, ctx: &mut Ctx<'_, OspfMsg>) {
        let adj = self.live_adjacencies(ctx.now());
        if adj == self.own_adjacencies {
            return;
        }
        self.own_adjacencies = adj.clone();
        self.own_seq += 1;
        self.lsas_originated += 1;
        self.lsdb.insert(self.id, (self.own_seq, adj.clone()));
        let msg = OspfMsg::Lsa {
            origin: self.id,
            seq: self.own_seq,
            adjacencies: adj.clone(),
        };
        let wire = Self::lsa_wire_bytes(adj.len());
        ctx.broadcast_control_sized(NetId::A, msg.clone(), wire);
        ctx.broadcast_control_sized(NetId::B, msg, wire);
    }

    /// Recomputes the kernel route table from adjacencies + LSDB.
    fn recompute_routes(&mut self, ctx: &mut Ctx<'_, OspfMsg>) {
        let now = ctx.now();
        let adj = self.live_adjacencies(now);
        let adjacent_on = |dst: NodeId, net: NetId| adj.contains(&(dst, net));
        let n = ctx.n_nodes() as u32;
        for d in 0..n {
            let dst = NodeId(d);
            if dst == self.id {
                continue;
            }
            let route = if adjacent_on(dst, NetId::A) {
                Some(Route::Direct(NetId::A))
            } else if adjacent_on(dst, NetId::B) {
                Some(Route::Direct(NetId::B))
            } else {
                // Two-hop: lowest-id neighbour whose LSA claims adjacency
                // to the destination.
                adj.iter()
                    .filter(|&&(g, _)| {
                        g != dst
                            && self
                                .lsdb
                                .get(&g)
                                .is_some_and(|(_, ga)| ga.iter().any(|&(p, _)| p == dst))
                    })
                    .min_by_key(|&&(g, net)| (g.0, net.idx()))
                    .map(|&(g, net)| Route::Via { gateway: g, net })
            };
            match route {
                Some(r) => ctx.set_route(dst, r),
                None => {
                    ctx.del_route(dst);
                }
            }
        }
    }
}

impl Protocol for OspfDaemon {
    type Msg = OspfMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, OspfMsg>) {
        // Like RIP: trust nothing until the protocol has learned it.
        let peers: Vec<NodeId> = (0..ctx.n_nodes() as u32)
            .map(NodeId)
            .filter(|&p| p != self.id)
            .collect();
        for p in peers {
            ctx.del_route(p);
        }
        ctx.broadcast_control_sized(NetId::A, OspfMsg::Hello, 44);
        ctx.broadcast_control_sized(NetId::B, OspfMsg::Hello, 44);
        self.hellos_sent += 1;
        ctx.set_timer(self.cfg.hello_interval, TICK_TOKEN);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, OspfMsg>, token: u64) {
        debug_assert_eq!(token, TICK_TOKEN);
        ctx.broadcast_control_sized(NetId::A, OspfMsg::Hello, 44);
        ctx.broadcast_control_sized(NetId::B, OspfMsg::Hello, 44);
        self.hellos_sent += 1;
        // Dead-interval sweep may tear adjacencies down.
        self.originate_if_changed(ctx);
        self.recompute_routes(ctx);
        ctx.set_timer(self.cfg.hello_interval, TICK_TOKEN);
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_, OspfMsg>, from: NodeId, net: NetId, msg: &OspfMsg) {
        match msg {
            OspfMsg::Hello => {
                let is_new = self
                    .last_heard
                    .insert((from, net), ctx.now())
                    .establishes_adjacency(ctx.now(), self.cfg.dead_interval);
                if is_new {
                    self.originate_if_changed(ctx);
                    self.recompute_routes(ctx);
                }
            }
            OspfMsg::Lsa {
                origin,
                seq,
                adjacencies,
            } => {
                if *origin == self.id {
                    return; // our own flood echoed back
                }
                let newer = self.lsdb.get(origin).is_none_or(|(s, _)| *s < *seq);
                if newer {
                    self.lsdb.insert(*origin, (*seq, adjacencies.clone()));
                    // Re-flood once per new LSA (both networks).
                    self.lsas_flooded += 1;
                    let wire = Self::lsa_wire_bytes(adjacencies.len());
                    let fwd = OspfMsg::Lsa {
                        origin: *origin,
                        seq: *seq,
                        adjacencies: adjacencies.clone(),
                    };
                    ctx.broadcast_control_sized(NetId::A, fwd.clone(), wire);
                    ctx.broadcast_control_sized(NetId::B, fwd, wire);
                    self.recompute_routes(ctx);
                }
            }
        }
    }
}

/// Tiny private extension for hello-driven adjacency refresh bookkeeping.
trait HelloInsert {
    fn establishes_adjacency(self, now: SimTime, dead: SimDuration) -> bool;
}

impl HelloInsert for Option<SimTime> {
    /// True when the previous hello was absent or already past the dead
    /// interval — i.e. this hello (re)establishes the adjacency.
    fn establishes_adjacency(self, now: SimTime, dead: SimDuration) -> bool {
        match self {
            None => true,
            Some(prev) => now.since(prev) > dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::fault::{FaultPlan, SimComponent};
    use drs_sim::scenario::ClusterSpec;
    use drs_sim::world::{FlowOutcome, World};

    fn ospf_world(n: usize, seed: u64, cfg: OspfConfig) -> World<OspfDaemon> {
        World::new(ClusterSpec::new(n).seed(seed), move |id| {
            OspfDaemon::new(id, cfg)
        })
    }

    /// 10 s / 40 s compressed 20:1 to 0.5 s / 2 s.
    fn fast_cfg() -> OspfConfig {
        OspfConfig::default().scaled_down(20)
    }

    #[test]
    fn converges_to_direct_routes() {
        let mut w = ospf_world(5, 1, fast_cfg());
        w.run_for(SimDuration::from_secs(3));
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    assert!(
                        matches!(
                            w.host(NodeId(i)).routes.get(NodeId(j)),
                            Some(Route::Direct(_))
                        ),
                        "n{i}->n{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn lsa_flooding_fills_every_lsdb() {
        let mut w = ospf_world(6, 2, fast_cfg());
        w.run_for(SimDuration::from_secs(3));
        for i in 0..6u32 {
            let d = w.protocol(NodeId(i));
            assert!(d.lsdb.len() >= 5, "n{i} lsdb has {} entries", d.lsdb.len());
        }
    }

    #[test]
    fn nic_failure_heals_after_dead_interval() {
        let cfg = fast_cfg(); // hello 0.5 s, dead 2 s
        let mut w = ospf_world(4, 3, cfg);
        w.run_for(SimDuration::from_secs(3));
        let t0 = w.now();
        w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Nic(NodeId(1), NetId::A)));

        // Before the dead interval: stale route.
        w.run_for(SimDuration::from_millis(1500));
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::A)),
            "OSPF has not noticed yet"
        );
        // After dead interval + hello: healed via net B.
        w.run_for(SimDuration::from_secs(3));
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::B))
        );
    }

    #[test]
    fn crossed_failure_heals_via_lsdb_gateway() {
        let cfg = fast_cfg();
        let mut w = ospf_world(5, 4, cfg);
        w.run_for(SimDuration::from_secs(3));
        let t0 = w.now();
        w.schedule_faults(
            FaultPlan::new()
                .fail_at(t0, SimComponent::Nic(NodeId(0), NetId::B))
                .fail_at(t0, SimComponent::Nic(NodeId(1), NetId::A)),
        );
        w.run_for(SimDuration::from_secs(6));
        match w.host(NodeId(0)).routes.get(NodeId(1)) {
            Some(Route::Via { gateway, net }) => {
                assert_eq!(net, NetId::A, "node 0 can only transmit on A");
                assert_eq!(gateway, NodeId(2), "lowest-id adjacent gateway");
            }
            other => panic!("expected gateway route, got {other:?}"),
        }
        let flow = w.send_app(w.now(), NodeId(0), NodeId(1), 128);
        w.run_for(SimDuration::from_secs(30));
        assert!(matches!(
            w.flow_outcome(flow),
            Some(FlowOutcome::Delivered(_))
        ));
    }

    #[test]
    fn recovery_is_slower_than_dead_interval_floor() {
        // A flow in flight during the failure must wait out at least the
        // dead interval — the reactive signature.
        let cfg = fast_cfg();
        let mut w = ospf_world(4, 5, cfg);
        w.run_for(SimDuration::from_secs(3));
        let t0 = w.now();
        w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Nic(NodeId(1), NetId::A)));
        let flow = w.send_app(
            t0 + SimDuration::from_millis(100),
            NodeId(0),
            NodeId(1),
            128,
        );
        w.run_for(SimDuration::from_secs(60));
        match w.flow_outcome(flow) {
            Some(FlowOutcome::Delivered(rtt)) => {
                assert!(
                    rtt >= cfg.dead_interval,
                    "cannot beat the dead interval: {rtt}"
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn hello_and_lsa_overhead_is_bounded() {
        // Steady state: hellos every interval; LSAs only at startup (one
        // adjacency-change wave), none afterwards.
        let mut w = ospf_world(6, 6, fast_cfg());
        w.run_for(SimDuration::from_secs(10));
        let d = w.protocol(NodeId(0));
        // Startup: each newly heard adjacency can trigger an origination,
        // so at most one per (peer, net) pair.
        let originated_early = d.lsas_originated;
        assert!(
            originated_early <= 10,
            "startup waves only: {originated_early}"
        );
        let before = w.protocol(NodeId(0)).lsas_originated;
        w.run_for(SimDuration::from_secs(10));
        assert_eq!(
            w.protocol(NodeId(0)).lsas_originated,
            before,
            "no LSA churn in steady state"
        );
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut w = ospf_world(4, seed, fast_cfg());
            w.schedule_faults(FaultPlan::new().fail_at(
                SimTime(2_000_000_000),
                SimComponent::Nic(NodeId(2), NetId::A),
            ));
            w.run_for(SimDuration::from_secs(10));
            (0..4u32)
                .map(|i| {
                    let d = w.protocol(NodeId(i));
                    (d.hellos_sent, d.lsas_originated, d.lsas_flooded)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
