//! The reactive-failover ablation: DRS's repair machinery without the
//! proactive monitoring.
//!
//! This daemon never probes on its own. It acts only when the local
//! transport reports trouble (a retransmission timeout or a missing
//! route): it then pings the destination on both networks, re-routes to
//! whichever answers first, and falls back to broadcast gateway discovery
//! when neither does. By construction every failure is application-
//! visible — the transport has already lost at least one RTO by the time
//! repair begins. Comparing this daemon with DRS isolates exactly what
//! continuous monitoring buys.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use drs_sim::ids::{NetId, NodeId};
use drs_sim::routes::Route;
use drs_sim::time::{SimDuration, SimTime};
use drs_sim::world::{Ctx, Protocol, TransportEvent};

/// ICMP identifier of reactive repair probes.
const ECHO_ID: u32 = 0x0EA;
/// ICMP identifier of gateway verification probes.
const ECHO_VERIFY_ID: u32 = 0x0EB;

const KIND_PROBE_TIMEOUT: u64 = 1;
const KIND_DISCOVERY_TIMEOUT: u64 = 2;
const KIND_VERIFY_TIMEOUT: u64 = 3;

fn token(kind: u64, dst: NodeId, payload: u64) -> u64 {
    kind << 56 | (dst.0 as u64) << 32 | (payload & 0xFFFF_FFFF)
}

fn untoken(t: u64) -> (u64, NodeId, u64) {
    (
        t >> 56,
        NodeId((t >> 32 & 0xFF_FFFF) as u32),
        t & 0xFFFF_FFFF,
    )
}

/// Reactive daemon tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReactiveConfig {
    /// How long to wait for repair-probe replies.
    pub probe_timeout: SimDuration,
    /// How long to wait for gateway offers.
    pub offer_timeout: SimDuration,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        ReactiveConfig {
            probe_timeout: SimDuration::from_millis(200),
            offer_timeout: SimDuration::from_millis(200),
        }
    }
}

/// Control messages (same two-message discovery dialogue as DRS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReactiveMsg {
    /// Broadcast: "who can relay to `target`?"
    RouteRequest {
        /// Unreachable destination.
        target: NodeId,
        /// Requester-local round id.
        req_id: u64,
    },
    /// Unicast offer to relay.
    RouteOffer {
        /// The destination offered.
        target: NodeId,
        /// Round being answered.
        req_id: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RepairPhase {
    Probing { seq: u32 },
    Discovering { req_id: u64 },
}

/// An in-flight gateway verification: before offering to relay, the
/// daemon pings the target and only answers if it gets a reply — an
/// on-demand (still reactive) liveness check that also refreshes the
/// gateway's own kernel route, so the relay path it offers actually
/// works.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingVerify {
    requester: NodeId,
    target: NodeId,
    req_id: u64,
    reply_net: NetId,
}

/// One host's reactive failover daemon.
#[derive(Debug, Clone)]
pub struct ReactiveDaemon {
    id: NodeId,
    cfg: ReactiveConfig,
    repairs: HashMap<NodeId, RepairPhase>,
    verifies: HashMap<u32, PendingVerify>,
    next_seq: u32,
    next_req: u64,
    /// Repairs begun (one per troubled destination at a time).
    pub repairs_started: u64,
    /// Repairs that installed a working route.
    pub repairs_completed: u64,
    /// Repairs abandoned with no probe reply and no offer.
    pub repairs_failed: u64,
    /// When each completed repair finished (for latency studies).
    pub completions: Vec<SimTime>,
}

impl ReactiveDaemon {
    /// A reactive daemon for host `id`.
    #[must_use]
    pub fn new(id: NodeId, cfg: ReactiveConfig) -> Self {
        ReactiveDaemon {
            id,
            cfg,
            repairs: HashMap::new(),
            verifies: HashMap::new(),
            next_seq: 0,
            next_req: 0,
            repairs_started: 0,
            repairs_completed: 0,
            repairs_failed: 0,
            completions: Vec::new(),
        }
    }

    fn begin_repair(&mut self, ctx: &mut Ctx<'_, ReactiveMsg>, dst: NodeId) {
        if self.repairs.contains_key(&dst) {
            return; // already working on it
        }
        self.repairs_started += 1;
        self.next_seq += 1;
        let seq = self.next_seq;
        self.repairs.insert(dst, RepairPhase::Probing { seq });
        ctx.send_echo(NetId::A, dst, ECHO_ID, seq);
        ctx.send_echo(NetId::B, dst, ECHO_ID, seq);
        ctx.set_timer(
            self.cfg.probe_timeout,
            token(KIND_PROBE_TIMEOUT, dst, seq as u64),
        );
    }

    fn complete(&mut self, ctx: &mut Ctx<'_, ReactiveMsg>, dst: NodeId, route: Route) {
        ctx.set_route(dst, route);
        self.repairs.remove(&dst);
        self.repairs_completed += 1;
        self.completions.push(ctx.now());
    }
}

impl Protocol for ReactiveDaemon {
    type Msg = ReactiveMsg;

    fn on_transport(&mut self, ctx: &mut Ctx<'_, ReactiveMsg>, event: TransportEvent) {
        match event {
            TransportEvent::Rto { dst, .. }
            | TransportEvent::NoRoute { dst, .. }
            | TransportEvent::AckFailed { dst, .. }
            | TransportEvent::DuplicateData { dst, .. } => {
                self.begin_repair(ctx, dst);
            }
            TransportEvent::Delivered { .. } | TransportEvent::GaveUp { .. } => {}
        }
    }

    fn on_echo_reply(
        &mut self,
        ctx: &mut Ctx<'_, ReactiveMsg>,
        from: NodeId,
        net: NetId,
        id: u32,
        seq: u32,
    ) {
        match id {
            ECHO_ID => {
                if let Some(RepairPhase::Probing { seq: want }) = self.repairs.get(&from).copied() {
                    if want == seq {
                        self.complete(ctx, from, Route::Direct(net));
                    }
                }
            }
            ECHO_VERIFY_ID => {
                let Some(v) = self.verifies.remove(&seq) else {
                    return;
                };
                debug_assert_eq!(v.target, from);
                // The target answered on `net`: refresh our own route so
                // the relay path we are about to offer actually works,
                // then make the offer.
                ctx.set_route(v.target, Route::Direct(net));
                ctx.send_control(
                    v.reply_net,
                    v.requester,
                    ReactiveMsg::RouteOffer {
                        target: v.target,
                        req_id: v.req_id,
                    },
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ReactiveMsg>, t: u64) {
        let (kind, dst, payload) = untoken(t);
        match kind {
            KIND_PROBE_TIMEOUT => {
                let Some(RepairPhase::Probing { seq }) = self.repairs.get(&dst).copied() else {
                    return;
                };
                if seq as u64 != payload {
                    return; // a newer repair superseded this probe
                }
                // Neither network answered: look for a gateway.
                self.next_req += 1;
                let req_id = self.next_req;
                self.repairs
                    .insert(dst, RepairPhase::Discovering { req_id });
                let msg = ReactiveMsg::RouteRequest {
                    target: dst,
                    req_id,
                };
                ctx.broadcast_control(NetId::A, msg);
                ctx.broadcast_control(NetId::B, msg);
                ctx.set_timer(
                    self.cfg.offer_timeout,
                    token(KIND_DISCOVERY_TIMEOUT, dst, req_id),
                );
            }
            KIND_DISCOVERY_TIMEOUT => {
                if let Some(RepairPhase::Discovering { req_id }) = self.repairs.get(&dst).copied() {
                    if req_id & 0xFFFF_FFFF == payload {
                        // Nobody offered: give up; the next transport RTO
                        // will restart the whole repair.
                        self.repairs.remove(&dst);
                        self.repairs_failed += 1;
                    }
                }
            }
            KIND_VERIFY_TIMEOUT => {
                // Target never answered the verification ping: no offer.
                self.verifies.remove(&(payload as u32));
            }
            _ => unreachable!("unknown reactive timer kind {kind}"),
        }
    }

    fn on_control(
        &mut self,
        ctx: &mut Ctx<'_, ReactiveMsg>,
        from: NodeId,
        net: NetId,
        msg: &ReactiveMsg,
    ) {
        match *msg {
            ReactiveMsg::RouteRequest { target, req_id } => {
                if target == self.id || from == self.id {
                    return;
                }
                // One-hop relays only (as in DRS): never offer a path we
                // would ourselves relay through someone else.
                if matches!(ctx.route(target), Some(Route::Via { .. })) {
                    return;
                }
                // Verify on demand before offering: ping the target on
                // both networks and answer only if it replies.
                self.next_seq += 1;
                let seq = self.next_seq;
                self.verifies.insert(
                    seq,
                    PendingVerify {
                        requester: from,
                        target,
                        req_id,
                        reply_net: net,
                    },
                );
                ctx.send_echo(NetId::A, target, ECHO_VERIFY_ID, seq);
                ctx.send_echo(NetId::B, target, ECHO_VERIFY_ID, seq);
                ctx.set_timer(
                    self.cfg.probe_timeout,
                    token(KIND_VERIFY_TIMEOUT, target, seq as u64),
                );
            }
            ReactiveMsg::RouteOffer { target, req_id } => {
                if let Some(RepairPhase::Discovering { req_id: want }) =
                    self.repairs.get(&target).copied()
                {
                    if want == req_id {
                        self.complete(ctx, target, Route::Via { gateway: from, net });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::fault::{FaultPlan, SimComponent};
    use drs_sim::scenario::ClusterSpec;
    use drs_sim::world::{FlowOutcome, World};

    fn world(n: usize, seed: u64) -> World<ReactiveDaemon> {
        World::new(ClusterSpec::new(n).seed(seed), |id| {
            ReactiveDaemon::new(id, ReactiveConfig::default())
        })
    }

    #[test]
    fn token_roundtrip() {
        let t = token(KIND_PROBE_TIMEOUT, NodeId(77), 0xABCD);
        assert_eq!(untoken(t), (KIND_PROBE_TIMEOUT, NodeId(77), 0xABCD));
    }

    #[test]
    fn idle_until_transport_complains() {
        let mut w = world(4, 1);
        w.run_for(SimDuration::from_secs(30));
        assert_eq!(
            w.host(NodeId(0)).counters.echo_sent,
            0,
            "no proactive probes"
        );
        assert_eq!(w.protocol(NodeId(0)).repairs_started, 0);
    }

    #[test]
    fn recovers_after_rto_but_application_noticed() {
        let mut w = world(4, 2);
        w.schedule_faults(
            FaultPlan::new().fail_at(SimTime(0), SimComponent::Nic(NodeId(1), NetId::A)),
        );
        let flow = w.send_app(SimTime(1000), NodeId(0), NodeId(1), 128);
        w.run_for(SimDuration::from_secs(30));
        match w.flow_outcome(flow) {
            Some(FlowOutcome::Delivered(rtt)) => {
                // Repaired only after the first RTO (1 s) fired; with the
                // receiver's return path also needing repair the flow can
                // take several backoff rounds, but far less than a RIP
                // timeout or the transport's 127 s give-up horizon.
                assert!(rtt >= SimDuration::from_secs(1), "{rtt}");
                assert!(rtt < SimDuration::from_secs(16), "{rtt}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::B))
        );
        assert!(w.app_stats().retransmits >= 1, "failure was app-visible");
        assert!(w.protocol(NodeId(0)).repairs_completed >= 1);
    }

    #[test]
    fn crossed_failure_heals_via_gateway_discovery() {
        let mut w = world(4, 3);
        w.schedule_faults(
            FaultPlan::new()
                .fail_at(SimTime(0), SimComponent::Nic(NodeId(0), NetId::B))
                .fail_at(SimTime(0), SimComponent::Nic(NodeId(1), NetId::A)),
        );
        let flow = w.send_app(SimTime(1000), NodeId(0), NodeId(1), 128);
        w.run_for(SimDuration::from_secs(60));
        assert!(
            matches!(w.flow_outcome(flow), Some(FlowOutcome::Delivered(_))),
            "gateway relay must heal the crossed failure: {:?}",
            w.flow_outcome(flow)
        );
        assert!(matches!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Via { .. })
        ));
    }

    #[test]
    fn repair_state_cleared_when_nothing_helps() {
        // Destination completely dead: probing and discovery both fail,
        // state must not leak so later RTOs can retry.
        let mut w = world(3, 4);
        w.schedule_faults(
            FaultPlan::new()
                .fail_at(SimTime(0), SimComponent::Nic(NodeId(1), NetId::A))
                .fail_at(SimTime(0), SimComponent::Nic(NodeId(1), NetId::B)),
        );
        let flow = w.send_app(SimTime(1000), NodeId(0), NodeId(1), 128);
        w.run_for(SimDuration::from_secs(300));
        assert_eq!(w.flow_outcome(flow), Some(FlowOutcome::GaveUp));
        let d = w.protocol(NodeId(0));
        assert!(d.repairs_failed >= 2, "retried across several RTOs");
        assert_eq!(d.repairs_completed, 0);
    }
}
