//! Reactive baselines for the proactive-vs-reactive comparison.
//!
//! The paper positions DRS against "traditional routing systems" — RIP,
//! OSPF and friends — whose *"general design goal is based on reactively
//! rerouting when a specified timeout period has been reached."* This
//! crate provides three such comparators, all running on the same
//! [`drs_sim`] substrate and the same dual-network clusters as DRS:
//!
//! * [`StaticRouting`] — no daemon at all: routes stay on the primary
//!   network forever. The floor of the comparison.
//! * [`OspfDaemon`] — an OSPF-style link-state daemon: hello-based
//!   neighbour tracking (dead interval 4× the hello interval, per RFC
//!   2328) with flooded link-state advertisements. Heals in roughly one
//!   dead interval.
//! * [`RipDaemon`] — a RIP-style distance-vector daemon: periodic
//!   full-table advertisements (30 s in RFC 1058), route expiry after a
//!   silence timeout (180 s). Failures heal only after the timeout plus
//!   up to one advertisement interval.
//! * [`ReactiveDaemon`] — a best-effort reactive failover daemon that
//!   only acts when the transport reports retransmission timeouts: it
//!   then probes both networks and re-routes to whichever answers,
//!   falling back to broadcast gateway discovery. This is DRS's repair
//!   machinery *without* the proactive monitoring — the ablation that
//!   isolates the value of continuous probing.
//!
//! [`compare`] runs identical fault/traffic scenarios over every protocol
//! and reports the application-visible difference.

pub mod compare;
pub mod ospf;
pub mod reactive;
pub mod rip;
pub mod static_route;

pub use compare::{
    drs_trace_event, run_protocol, run_protocol_observed, run_protocol_traced, run_scenario,
    run_shootout, shootout_record, standard_shootout_scenarios, NamedScenario, ProtocolConfigs,
    ProtocolLabel, ProtocolObservation, ScenarioResult, ScenarioSpec, ShootoutRow,
};
pub use ospf::{OspfConfig, OspfDaemon, OspfMsg};
pub use reactive::{ReactiveConfig, ReactiveDaemon, ReactiveMsg};
pub use rip::{RipConfig, RipDaemon, RipMsg};
pub use static_route::StaticRouting;
