//! A RIP-style distance-vector daemon (after RFC 1058), adapted to the
//! dual-network cluster.
//!
//! Each host advertises its full distance table on both networks every
//! `update_interval` (RFC: 30 s). Routes are learned from neighbours'
//! advertisements at `metric + 1` and expire after `route_timeout`
//! (RFC: 180 s) of silence. There is no probing and no failure
//! notification: a dead link is discovered only because advertisements
//! stop arriving — so recovery takes *route_timeout + up to one update
//! interval*, the "specified timeout period" the paper contrasts DRS
//! against.
//!
//! Split horizon is implemented (routes are not advertised back onto the
//! interface they were learned from), as is the RIP infinity metric (16).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use drs_sim::ids::{NetId, NodeId};
use drs_sim::routes::Route;
use drs_sim::time::{SimDuration, SimTime};
use drs_sim::world::{Ctx, Protocol};

/// The RIP infinity metric: unreachable.
pub const INFINITY: u8 = 16;

const TICK_TOKEN: u64 = 1;

/// RIP daemon tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RipConfig {
    /// Advertisement period (RFC 1058: 30 s).
    pub update_interval: SimDuration,
    /// Silence before a learned route is invalidated (RFC 1058: 180 s).
    pub route_timeout: SimDuration,
}

impl Default for RipConfig {
    fn default() -> Self {
        RipConfig {
            update_interval: SimDuration::from_secs(30),
            route_timeout: SimDuration::from_secs(180),
        }
    }
}

impl RipConfig {
    /// Scales both intervals by dividing them by `k` — used by tests to
    /// compress RIP's minutes into simulated seconds while preserving the
    /// 1:6 update/timeout ratio.
    #[must_use]
    pub fn scaled_down(self, k: u64) -> Self {
        assert!(k >= 1);
        RipConfig {
            update_interval: self.update_interval.div(k),
            route_timeout: self.route_timeout.div(k),
        }
    }
}

/// A RIP advertisement: `(destination, metric)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RipMsg {
    /// The advertised routes.
    pub entries: Vec<(NodeId, u8)>,
}

#[derive(Debug, Clone, Copy)]
struct RipEntry {
    metric: u8,
    via: NodeId,
    net: NetId,
    last_heard: SimTime,
}

/// One host's RIP daemon.
#[derive(Debug, Clone)]
pub struct RipDaemon {
    id: NodeId,
    cfg: RipConfig,
    table: HashMap<NodeId, RipEntry>,
    /// Advertisements sent (for overhead accounting in experiments).
    pub adverts_sent: u64,
    /// Route invalidations due to timeout.
    pub timeouts: u64,
}

impl RipDaemon {
    /// A RIP daemon for host `id`.
    #[must_use]
    pub fn new(id: NodeId, cfg: RipConfig) -> Self {
        RipDaemon {
            id,
            cfg,
            table: HashMap::new(),
            adverts_sent: 0,
            timeouts: 0,
        }
    }

    /// The daemon's current metric to `dst` (INFINITY when unknown).
    #[must_use]
    pub fn metric(&self, dst: NodeId) -> u8 {
        if dst == self.id {
            0
        } else {
            self.table.get(&dst).map_or(INFINITY, |e| e.metric)
        }
    }

    /// On-wire size of an advertisement: RIP header (24 B UDP+RIP) plus a
    /// 20-byte route entry each, per RFC 1058's packet format.
    fn advert_wire_bytes(entries: usize) -> u32 {
        24 + 20 * entries as u32
    }

    fn advertise(&mut self, ctx: &mut Ctx<'_, RipMsg>) {
        for net in NetId::planes(ctx.planes()) {
            // Split horizon: omit routes learned on this interface.
            let mut entries = vec![(self.id, 0u8)];
            entries.extend(self.table.iter().filter_map(|(&dst, e)| {
                (e.net != net && e.metric < INFINITY).then_some((dst, e.metric))
            }));
            let wire = Self::advert_wire_bytes(entries.len());
            ctx.broadcast_control_sized(net, RipMsg { entries }, wire);
        }
        self.adverts_sent += 1;
    }

    fn expire_stale(&mut self, ctx: &mut Ctx<'_, RipMsg>) {
        let now = ctx.now();
        let timeout = self.cfg.route_timeout;
        let expired: Vec<NodeId> = self
            .table
            .iter()
            .filter(|(_, e)| now.since(e.last_heard) > timeout && e.metric < INFINITY)
            .map(|(&d, _)| d)
            .collect();
        for dst in expired {
            self.table.get_mut(&dst).expect("present").metric = INFINITY;
            self.timeouts += 1;
            ctx.del_route(dst);
        }
    }

    fn kernel_route_for(entry: &RipEntry, dst: NodeId) -> Route {
        if entry.via == dst {
            Route::Direct(entry.net)
        } else {
            Route::Via {
                gateway: entry.via,
                net: entry.net,
            }
        }
    }
}

impl Protocol for RipDaemon {
    type Msg = RipMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, RipMsg>) {
        // RIP trusts nothing until it hears advertisements: clear the
        // kernel's static defaults and start the periodic announcer.
        let peers: Vec<NodeId> = (0..ctx.n_nodes() as u32)
            .map(NodeId)
            .filter(|&p| p != self.id)
            .collect();
        for p in peers {
            ctx.del_route(p);
        }
        self.advertise(ctx);
        ctx.set_timer(self.cfg.update_interval, TICK_TOKEN);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, RipMsg>, token: u64) {
        debug_assert_eq!(token, TICK_TOKEN);
        self.expire_stale(ctx);
        self.advertise(ctx);
        ctx.set_timer(self.cfg.update_interval, TICK_TOKEN);
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_, RipMsg>, from: NodeId, net: NetId, msg: &RipMsg) {
        let now = ctx.now();
        for &(dst, metric) in &msg.entries {
            if dst == self.id {
                continue;
            }
            let candidate = metric.saturating_add(1).min(INFINITY);
            let current = self.table.get(&dst).copied();
            let accept = match current {
                None => candidate < INFINITY,
                Some(e) => {
                    candidate < e.metric
                        // Same source refreshes (or worsens) its own route.
                        || (e.via == from && e.net == net)
                        // An expired entry takes any finite replacement.
                        || (e.metric >= INFINITY && candidate < INFINITY)
                }
            };
            if !accept {
                continue;
            }
            let entry = RipEntry {
                metric: candidate,
                via: from,
                net,
                last_heard: now,
            };
            self.table.insert(dst, entry);
            if candidate < INFINITY {
                ctx.set_route(dst, Self::kernel_route_for(&entry, dst));
            } else {
                ctx.del_route(dst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::fault::{FaultPlan, SimComponent};
    use drs_sim::scenario::ClusterSpec;
    use drs_sim::world::World;

    fn rip_world(n: usize, seed: u64, cfg: RipConfig) -> World<RipDaemon> {
        World::new(ClusterSpec::new(n).seed(seed), move |id| {
            RipDaemon::new(id, cfg)
        })
    }

    /// 30 s / 180 s compressed 30:1 to 1 s / 6 s.
    fn fast_cfg() -> RipConfig {
        RipConfig::default().scaled_down(30)
    }

    #[test]
    fn converges_to_all_pairs_direct_routes() {
        let mut w = rip_world(5, 1, fast_cfg());
        w.run_for(SimDuration::from_secs(5));
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    let r = w.host(NodeId(i)).routes.get(NodeId(j));
                    assert!(
                        matches!(r, Some(Route::Direct(_))),
                        "n{i}->n{j}: {r:?} (all hosts are one hop apart)"
                    );
                    assert_eq!(w.protocol(NodeId(i)).metric(NodeId(j)), 1);
                }
            }
        }
    }

    #[test]
    fn advert_size_grows_with_table() {
        assert_eq!(RipDaemon::advert_wire_bytes(1), 44);
        assert_eq!(RipDaemon::advert_wire_bytes(10), 224);
    }

    #[test]
    fn failure_heals_only_after_timeout() {
        let cfg = fast_cfg(); // update 1 s, timeout 6 s
        let mut w = rip_world(4, 2, cfg);
        w.run_for(SimDuration::from_secs(5)); // converge
        let t0 = w.now();
        w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Nic(NodeId(1), NetId::A)));

        // Well before the timeout the stale route is still installed.
        w.run_for(SimDuration::from_secs(3));
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::A)),
            "RIP has not noticed yet"
        );

        // After timeout + one update interval it has healed via net B.
        w.run_for(SimDuration::from_secs(7));
        assert_eq!(
            w.host(NodeId(0)).routes.get(NodeId(1)),
            Some(Route::Direct(NetId::B))
        );
        assert!(w.protocol(NodeId(0)).timeouts >= 1);
    }

    #[test]
    fn application_sees_long_outage_under_rip() {
        let cfg = fast_cfg();
        let mut w = rip_world(4, 3, cfg);
        w.run_for(SimDuration::from_secs(5));
        let t0 = w.now();
        w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Nic(NodeId(1), NetId::A)));
        let flow = w.send_app(
            t0 + SimDuration::from_millis(100),
            NodeId(0),
            NodeId(1),
            128,
        );
        w.run_for(SimDuration::from_secs(60));
        match w.flow_outcome(flow) {
            Some(drs_sim::world::FlowOutcome::Delivered(rtt)) => {
                assert!(
                    rtt > SimDuration::from_secs(5),
                    "flow must wait out the RIP timeout, took {rtt}"
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut w = rip_world(4, seed, fast_cfg());
            w.run_for(SimDuration::from_secs(10));
            (0..4u32)
                .map(|i| w.protocol(NodeId(i)).adverts_sent)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }
}
