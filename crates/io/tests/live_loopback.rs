//! Loopback UDP agreement: the identical daemon bytes, run over real
//! sockets with wall-clock timers, must behave like the DES predicted.
//!
//! The full-failover test is `#[ignore]`d by default: it binds dozens of
//! sockets and sleeps wall-clock seconds, and sandboxed environments may
//! forbid even loopback UDP. Run it with `cargo test -p drs-io --
//! --ignored` on a real machine. The smoke test below it is cheap and
//! degrades to a skip when the environment refuses sockets.

use std::time::Duration;

use drs_core::{DrsConfig, NetId, NodeId, Route, SimDuration};
use drs_io::{LiveCluster, LiveClusterSpec};

fn live_cfg() -> DrsConfig {
    // Tens-of-milliseconds cadence so a run converges in wall-clock
    // seconds; the same cfg is handed to the DES for the prediction.
    DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(25))
        .probe_interval(SimDuration::from_millis(50))
}

#[test]
fn live_cluster_binds_or_skips_gracefully() {
    let spec = LiveClusterSpec {
        n: 2,
        planes: 2,
        cfg: live_cfg(),
    };
    let cluster = match LiveCluster::bind(spec) {
        Ok(c) => c,
        Err(reason) => {
            // Sandboxed environment: the documented graceful degradation.
            assert!(!reason.is_empty());
            eprintln!("skipping live smoke: {reason}");
            return;
        }
    };
    let report = cluster.run(Duration::from_millis(400), None, Duration::ZERO);
    assert_eq!(report.fail_at, None);
    for (i, d) in report.daemons.iter().enumerate() {
        assert!(d.metrics.probes_sent > 0, "node {i} probed over real UDP");
        assert!(
            d.metrics.replies_received > 0,
            "node {i} heard real replies"
        );
        assert_eq!(
            d.metrics.link_down_events, 0,
            "node {i}: healthy loopback must not flap"
        );
    }
    // Nothing failed, so the deployed default routes survive untouched.
    assert_eq!(report.routes[0].get(NodeId(1)), Some(Route::Direct(NetId::A)));
}

#[test]
#[ignore = "binds real loopback sockets and sleeps wall-clock seconds; run with --ignored"]
fn live_failover_latency_agrees_with_des_prediction() {
    let cfg = live_cfg();
    let spec = LiveClusterSpec {
        n: 3,
        planes: 2,
        cfg,
    };
    let cluster = match LiveCluster::bind(spec) {
        Ok(c) => c,
        Err(reason) => {
            eprintln!("skipping live agreement test: {reason}");
            return;
        }
    };
    let report = cluster.run(
        Duration::from_millis(600),
        Some(NetId::A),
        Duration::from_millis(1500),
    );

    // The DES worst case: miss_threshold consecutive timeouts plus the
    // probe that was already in flight. Wall-clock scheduling (thread
    // wakeups, channel latency) buys a little slack on top.
    let bound = cfg.worst_case_detection() + cfg.probe_interval + SimDuration::from_millis(250);
    for (i, lat) in report.detection_latencies(NetId::A).iter().enumerate() {
        let lat = lat.unwrap_or_else(|| panic!("node {i} never detected the dead plane"));
        assert!(
            lat <= bound,
            "node {i}: real detection took {lat}, DES bound {bound}"
        );
    }
    // And the repair the DES predicts: every route lands on plane B.
    for (i, routes) in report.routes.iter().enumerate() {
        for (dst, route) in routes.iter() {
            assert_eq!(route, Route::Direct(NetId::B), "node {i} -> {dst}");
        }
    }
}
