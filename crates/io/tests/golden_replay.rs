//! Golden-trace replay: a DES run is captured through the daemon's
//! journal, then re-driven through a **fresh** daemon by [`ReplayIo`] —
//! with no kernel, no scheduler, no other nodes — and must reproduce the
//! original run byte-for-byte:
//!
//! * the metrics block, including the full decision/event log
//!   (compared via `Debug` formatting, so every field and every event
//!   must match exactly);
//! * the kernel route table the daemon ended with;
//! * the probe observability channels;
//! * the re-recorded journal itself (a replayed daemon journals too, so
//!   journalling must be a fixed point).
//!
//! Any divergence means the daemon read state outside the `DrsIo`
//! boundary — exactly the regression this suite exists to catch. The
//! same goldens are checked against both the single-threaded `World`
//! and the sharded kernel, which is what lets CI assert the replay
//! contract at `DRS_SIM_THREADS=1` and `=4` with one test binary.

use drs_core::{
    DaemonJournal, DrsConfig, DrsDaemon, GatewayPolicy, NetId, NodeId, ProbeObs, Route,
    RouteTable, SimDuration, SimTime,
};
use drs_io::replay_journal;
use drs_sim::fault::{FaultPlan, SimComponent};
use drs_sim::scenario::ClusterSpec;
use drs_sim::world::World;
use drs_sim::{threads_from_env, ShardedWorld};

/// Everything the DES run leaves behind for one node.
struct Golden {
    journal: DaemonJournal,
    metrics_dbg: String,
    routes: RouteTable,
    obs: ProbeObs,
}

fn fast_cfg() -> DrsConfig {
    DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(50))
        .probe_interval(SimDuration::from_millis(200))
        .record_journal(true)
}

fn capture_world(n: usize, seed: u64, cfg: DrsConfig, plan: FaultPlan, secs: u64) -> Vec<Golden> {
    let spec = ClusterSpec::new(n).seed(seed);
    let mut w = World::new(spec, move |id| DrsDaemon::new(id, n, cfg));
    w.schedule_faults(plan);
    w.run_for(SimDuration::from_secs(secs));
    (0..n as u32)
        .map(|i| {
            let d = w.protocol(NodeId(i));
            Golden {
                journal: d.journal().expect("journaling enabled").clone(),
                metrics_dbg: format!("{:?}", d.metrics),
                routes: w.host(NodeId(i)).routes.clone(),
                obs: w.host(NodeId(i)).obs.clone(),
            }
        })
        .collect()
}

fn capture_sharded(
    n: usize,
    seed: u64,
    cfg: DrsConfig,
    plan: FaultPlan,
    secs: u64,
) -> Vec<Golden> {
    let spec = ClusterSpec::new(n).seed(seed);
    let mut w =
        ShardedWorld::with_topology(spec, 2, threads_from_env(), move |id| {
            DrsDaemon::new(id, n, cfg)
        });
    w.schedule_faults(plan);
    w.run_for(SimDuration::from_secs(secs));
    (0..n as u32)
        .map(|i| {
            let d = w.protocol(NodeId(i));
            Golden {
                journal: d.journal().expect("journaling enabled").clone(),
                metrics_dbg: format!("{:?}", d.metrics),
                routes: w.host(NodeId(i)).routes.clone(),
                obs: w.host(NodeId(i)).obs.clone(),
            }
        })
        .collect()
}

/// Replays every node's journal through a fresh daemon and asserts the
/// reproduction is exact.
fn assert_replay_reproduces(n: usize, cfg: DrsConfig, goldens: &[Golden]) {
    for (i, g) in goldens.iter().enumerate() {
        let mut fresh = DrsDaemon::new(NodeId(i as u32), n, cfg);
        let io = replay_journal(&mut fresh, &g.journal);
        assert_eq!(
            format!("{:?}", fresh.metrics),
            g.metrics_dbg,
            "node {i}: replayed metrics + decision log must be byte-identical"
        );
        assert_eq!(
            io.route_table(),
            &g.routes,
            "node {i}: replayed route table must match the DES kernel's"
        );
        assert_eq!(
            io.probe_obs(),
            &g.obs,
            "node {i}: replayed probe observability must match"
        );
        assert_eq!(io.picks_remaining(), 0, "node {i}: all draws consumed");
        assert_eq!(
            fresh.journal().expect("replayed daemon journals too"),
            &g.journal,
            "node {i}: journaling must be a fixed point under replay"
        );
    }
}

fn hub_fault() -> FaultPlan {
    FaultPlan::new().fail_at(SimTime(1_000_000_000), SimComponent::Hub(NetId::A))
}

#[test]
fn golden_replay_four_nodes_hub_fault() {
    let n = 4;
    let cfg = fast_cfg();
    let goldens = capture_world(n, 41, cfg, hub_fault(), 3);
    assert!(goldens[0].journal.len() > 50, "a real run was captured");
    assert_replay_reproduces(n, cfg, &goldens);
}

#[test]
fn golden_replay_eight_nodes_hub_fault() {
    let n = 8;
    let cfg = fast_cfg();
    let goldens = capture_world(n, 42, cfg, hub_fault(), 3);
    assert_replay_reproduces(n, cfg, &goldens);
}

#[test]
fn golden_replay_matches_sharded_kernel() {
    // The sharded kernel must hand every daemon the same input stream
    // the single-threaded one does (that is its merge invariant), so its
    // journals replay just as exactly — at whatever DRS_SIM_THREADS CI
    // set for this process.
    let n = 8;
    let cfg = fast_cfg();
    let goldens = capture_sharded(n, 42, cfg, hub_fault(), 3);
    assert_replay_reproduces(n, cfg, &goldens);
}

#[test]
fn golden_replay_reproduces_random_gateway_draws() {
    // A crossed NIC failure forces broadcast discovery; the Random offer
    // policy consumes journaled picks, which replay must follow to land
    // on the identical gateway.
    let n = 4;
    let cfg = fast_cfg().gateway_policy(GatewayPolicy::Random);
    let plan = FaultPlan::new()
        .fail_at(SimTime(1_000_000_000), SimComponent::Nic(NodeId(0), NetId::B))
        .fail_at(SimTime(1_000_000_000), SimComponent::Nic(NodeId(1), NetId::A));
    let goldens = capture_world(n, 43, cfg, plan, 6);
    assert!(
        goldens.iter().any(|g| !g.journal.picks.is_empty()),
        "discovery under Random policy must draw randomness"
    );
    // The discovery ended in a gateway route on both crossed nodes.
    assert!(matches!(goldens[0].routes.get(NodeId(1)), Some(Route::Via { .. })));
    assert_replay_reproduces(n, cfg, &goldens);
}
