//! Non-DES backends for the DRS daemon.
//!
//! `drs_core` defines the [`drs_core::io::DrsIo`] boundary and the daemon
//! state machine; `drs_sim` implements the boundary on its deterministic
//! event kernel. This crate supplies the other two backends the boundary
//! was built for, proving the daemon bytes are genuinely I/O-free:
//!
//! * [`replay`] — drives a daemon from a recorded
//!   [`drs_core::journal::DaemonJournal`], with journaled timestamps as
//!   the clock and journaled draws as the randomness. A replayed daemon
//!   must reproduce the original run's metrics, event log and route
//!   table **byte-for-byte**; the golden tests in this crate assert it.
//! * [`live`] — runs daemons over real `std::net` UDP sockets on
//!   loopback, one socket per plane per node, with wall-clock timers and
//!   thread-per-node event loops. Plane failures are injected at the
//!   socket layer, so real failover latency can be measured and compared
//!   against the DES prediction (`drs-bench --bin live_cluster`).
//! * [`wire`] — the tiny datagram codec the live backend speaks.
//!
//! No async runtime, no external networking crates: the live backend is
//! plain blocking sockets and threads, which keeps the crate buildable
//! everywhere the toolchain runs.

pub mod live;
pub mod replay;
pub mod wire;

pub use live::{LiveCluster, LiveClusterSpec, LiveOutcome, LiveReport};
pub use replay::{replay_journal, ReplayIo};
