//! The trace-replay backend: re-drives a daemon from a recorded journal.
//!
//! A [`drs_core::journal::DaemonJournal`] captures everything the
//! [`DrsIo` determinism contract](drs_core::io) says a daemon run depends
//! on: the entry-point sequence with arrival times, and the `pick` draw
//! results. [`ReplayIo`] plays that back:
//!
//! * [`DrsIo::now`] returns the journaled timestamp of the record being
//!   replayed (constant within the handler call, monotone across calls —
//!   exactly the contract);
//! * [`DrsIo::pick`] pops the next journaled draw;
//! * [`DrsIo::set_timer`] is a no-op — timer *firings* are journal
//!   records, so arming them again would be double-driving;
//! * sends are counted but go nowhere (their effects come back as
//!   journaled inputs);
//! * routes and probe observations are local state, so the replayed
//!   daemon's decisions land somewhere comparable;
//! * flight hooks record nothing (`None`), which the contract requires
//!   to be behaviour-neutral.
//!
//! If the replayed daemon's metrics, event log, or route table differ
//! from the original run's, the daemon read state outside the trait —
//! that is the regression the golden suite exists to catch.

use drs_core::io::DrsIo;
use drs_core::journal::{DaemonInput, DaemonJournal};
use drs_core::messages::DrsMsg;
use drs_core::routes::{Route, RouteTable};
use drs_core::stats::ProbeObs;
use drs_core::time::{SimDuration, SimTime};
use drs_core::{DrsDaemon, NetId, NodeId};
use drs_obs::flight::{EventRef, TraceKind};

/// `DrsIo` over a recorded journal. Build one with [`ReplayIo::new`],
/// then run the daemon through the whole journal with
/// [`replay_journal`] (or step records yourself for custom drivers).
#[derive(Debug)]
pub struct ReplayIo {
    picks: Vec<usize>,
    next_pick: usize,
    now: SimTime,
    planes: u8,
    routes: RouteTable,
    obs: ProbeObs,
    /// Frames the replayed daemon tried to send, by kind — useful for
    /// sanity checks; replay has no wire to put them on.
    pub echoes_sent: u64,
    /// Control messages (unicast + broadcast) the daemon tried to send.
    pub controls_sent: u64,
    /// Timer arms the daemon requested (ignored: firings are journaled).
    pub timers_armed: u64,
}

impl ReplayIo {
    /// A replay backend for `owner`'s daemon in an `n`-host cluster,
    /// starting from the deployed default route table (a direct primary
    /// route to every peer) — the same initial state a DES host boots
    /// with.
    #[must_use]
    pub fn new(owner: NodeId, n: usize, journal: &DaemonJournal) -> Self {
        ReplayIo {
            picks: journal.picks.clone(),
            next_pick: 0,
            now: SimTime(0),
            planes: 2,
            routes: RouteTable::new_default(owner, n),
            obs: ProbeObs::default(),
            echoes_sent: 0,
            controls_sent: 0,
            timers_armed: 0,
        }
    }

    /// Feeds one journal record into the daemon.
    pub fn step(&mut self, daemon: &mut DrsDaemon, at: SimTime, input: DaemonInput) {
        self.now = at;
        match input {
            DaemonInput::Start { planes } => {
                self.planes = planes;
                daemon.handle_start(self);
            }
            DaemonInput::Timer { token } => daemon.handle_timer(self, token),
            DaemonInput::EchoReply { from, net, id, seq } => {
                daemon.handle_echo_reply(self, from, net, id, seq);
            }
            DaemonInput::Control { from, net, msg } => {
                daemon.handle_control(self, from, net, &msg);
            }
        }
    }

    /// The replayed daemon's route table.
    #[must_use]
    pub fn route_table(&self) -> &RouteTable {
        &self.routes
    }

    /// The replayed daemon's probe observations.
    #[must_use]
    pub fn probe_obs(&self) -> &ProbeObs {
        &self.obs
    }

    /// Journaled draws not yet consumed (0 after a complete replay).
    #[must_use]
    pub fn picks_remaining(&self) -> usize {
        self.picks.len() - self.next_pick
    }
}

impl DrsIo for ReplayIo {
    fn now(&self) -> SimTime {
        self.now
    }

    fn planes(&self) -> u8 {
        self.planes
    }

    fn pick(&mut self, n: usize) -> usize {
        let i = self.picks.get(self.next_pick).copied().unwrap_or_else(|| {
            panic!(
                "replay exhausted journaled picks at draw {} — \
                 the daemon drew more randomness than the recorded run",
                self.next_pick
            )
        });
        self.next_pick += 1;
        assert!(i < n, "journaled pick {i} out of range 0..{n}");
        i
    }

    fn send_echo_traced(
        &mut self,
        _net: NetId,
        _dst: NodeId,
        _id: u32,
        _seq: u32,
        _flight: Option<EventRef>,
    ) {
        self.echoes_sent += 1;
        // Probe-byte accounting is backend work (the DES charges it in
        // `send_echo`), charged here at the deployed 74 B ICMP wire size
        // so a replayed `ProbeObs` compares equal to a default-spec run.
        self.obs.probe_bytes += 74;
    }

    fn send_control(&mut self, _net: NetId, _dst: NodeId, _msg: DrsMsg) {
        self.controls_sent += 1;
    }

    fn broadcast_control(&mut self, _net: NetId, _msg: DrsMsg) {
        self.controls_sent += 1;
    }

    fn set_timer(&mut self, _delay: SimDuration, _token: u64) {
        self.timers_armed += 1;
    }

    fn set_route(&mut self, dst: NodeId, route: Route) {
        self.routes.set(dst, route);
    }

    fn route(&self, dst: NodeId) -> Option<Route> {
        self.routes.get(dst)
    }

    fn routes(&self) -> &RouteTable {
        &self.routes
    }

    fn probe_obs_mut(&mut self) -> &mut ProbeObs {
        &mut self.obs
    }

    fn flight_record(
        &mut self,
        _kind: TraceKind,
        _plane: Option<NetId>,
        _arg: u64,
        _cause: Option<EventRef>,
    ) -> Option<EventRef> {
        None
    }

    fn flight_pin(&mut self, _r: EventRef) {}

    fn flight_release(&mut self, _r: EventRef) {}
}

/// Replays a complete journal through a **fresh** daemon and returns the
/// backend for inspection. `daemon` must be constructed with the same
/// `(id, n, config)` as the recorded one; the journal supplies
/// everything else.
pub fn replay_journal(daemon: &mut DrsDaemon, journal: &DaemonJournal) -> ReplayIo {
    let mut io = ReplayIo::new(daemon.id(), daemon.n_nodes(), journal);
    for rec in &journal.records {
        io.step(daemon, rec.at, rec.input);
    }
    io
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_core::config::DrsConfig;
    use drs_core::journal::JournalRecord;

    fn journal_of(records: Vec<JournalRecord>) -> DaemonJournal {
        DaemonJournal {
            records,
            picks: Vec::new(),
        }
    }

    #[test]
    fn start_record_sizes_the_daemon_and_arms_nothing_real() {
        let n = 4;
        let mut d = DrsDaemon::new(NodeId(0), n, DrsConfig::default());
        let j = journal_of(vec![JournalRecord {
            at: SimTime(0),
            input: DaemonInput::Start { planes: 3 },
        }]);
        let io = replay_journal(&mut d, &j);
        assert_eq!(d.peer_table().planes(), 3);
        // Per-pair staggered timers: one per (peer, plane).
        assert_eq!(io.timers_armed, 3 * (n as u64 - 1));
        assert_eq!(io.echoes_sent, 0);
    }

    #[test]
    fn replay_time_follows_the_journal() {
        let n = 3;
        let mut d = DrsDaemon::new(NodeId(0), n, DrsConfig::default());
        let mut io = ReplayIo::new(NodeId(0), n, &DaemonJournal::default());
        io.step(&mut d, SimTime(7), DaemonInput::Start { planes: 2 });
        assert_eq!(DrsIo::now(&io), SimTime(7));
        io.step(
            &mut d,
            SimTime(19),
            DaemonInput::EchoReply {
                from: NodeId(1),
                net: NetId::A,
                id: 0,
                seq: 0,
            },
        );
        assert_eq!(DrsIo::now(&io), SimTime(19));
        // Foreign echo id: observed, counted nowhere, no sends triggered.
        assert_eq!(io.echoes_sent, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn corrupt_pick_is_rejected() {
        let mut io = ReplayIo::new(NodeId(0), 2, &DaemonJournal::default());
        io.picks = vec![5];
        let _ = io.pick(2);
    }
}
