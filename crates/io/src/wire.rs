//! Datagram codec for the live UDP backend.
//!
//! One DRS frame per UDP datagram, fixed little-endian layout, no
//! dependencies. The format mirrors what the DES kernel carries in its
//! [`drs_core::frame::FrameKind`]: echo request/reply (the monitor
//! plane) and the two control messages (the repair plane). The plane
//! index travels in the datagram so a receiver can verify it against
//! the socket the datagram arrived on.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0]      kind: 1 echo-request, 2 echo-reply, 3 route-request, 4 route-offer
//! [1..5]   src node id (u32)
//! [5]      plane index (u8)
//! echo:    [6..10] icmp id (u32), [10..14] seq (u32)          -> 14 B
//! control: [6..10] target node (u32), [10..18] req id (u64)   -> 18 B
//! ```

use drs_core::messages::DrsMsg;
use drs_core::{NetId, NodeId};

/// One decoded datagram: who sent it, on which plane, carrying what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Datagram {
    /// Sending node.
    pub src: NodeId,
    /// Plane the sender transmitted on.
    pub net: NetId,
    /// The payload.
    pub payload: Payload,
}

/// The DRS frame kinds that cross the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// Monitor probe (answered by the receiver's stack, not its daemon).
    EchoRequest {
        /// ICMP identifier.
        id: u32,
        /// ICMP sequence number.
        seq: u32,
    },
    /// Answer to a probe (delivered to the receiver's daemon).
    EchoReply {
        /// ICMP identifier.
        id: u32,
        /// ICMP sequence number.
        seq: u32,
    },
    /// A DRS control message (delivered to the receiver's daemon).
    Control(DrsMsg),
}

const KIND_ECHO_REQUEST: u8 = 1;
const KIND_ECHO_REPLY: u8 = 2;
const KIND_ROUTE_REQUEST: u8 = 3;
const KIND_ROUTE_OFFER: u8 = 4;

/// Maximum encoded size of any datagram.
pub const MAX_DATAGRAM: usize = 18;

/// Encodes a datagram into `buf`, returning the number of bytes used.
///
/// # Panics
/// Panics if `buf` is shorter than [`MAX_DATAGRAM`].
pub fn encode(d: &Datagram, buf: &mut [u8]) -> usize {
    assert!(buf.len() >= MAX_DATAGRAM, "encode buffer too small");
    buf[1..5].copy_from_slice(&d.src.0.to_le_bytes());
    buf[5] = d.net.0;
    match d.payload {
        Payload::EchoRequest { id, seq } | Payload::EchoReply { id, seq } => {
            buf[0] = if matches!(d.payload, Payload::EchoRequest { .. }) {
                KIND_ECHO_REQUEST
            } else {
                KIND_ECHO_REPLY
            };
            buf[6..10].copy_from_slice(&id.to_le_bytes());
            buf[10..14].copy_from_slice(&seq.to_le_bytes());
            14
        }
        Payload::Control(msg) => {
            let (kind, target, req_id) = match msg {
                DrsMsg::RouteRequest { target, req_id } => (KIND_ROUTE_REQUEST, target, req_id),
                DrsMsg::RouteOffer { target, req_id } => (KIND_ROUTE_OFFER, target, req_id),
            };
            buf[0] = kind;
            buf[6..10].copy_from_slice(&target.0.to_le_bytes());
            buf[10..18].copy_from_slice(&req_id.to_le_bytes());
            18
        }
    }
}

/// Decodes one datagram; `None` for truncated or unknown frames (a live
/// receiver drops garbage silently, like a real stack).
#[must_use]
pub fn decode(buf: &[u8]) -> Option<Datagram> {
    if buf.len() < 14 {
        return None;
    }
    let src = NodeId(u32::from_le_bytes(buf[1..5].try_into().ok()?));
    let net = NetId(buf[5]);
    let payload = match buf[0] {
        KIND_ECHO_REQUEST | KIND_ECHO_REPLY => {
            let id = u32::from_le_bytes(buf[6..10].try_into().ok()?);
            let seq = u32::from_le_bytes(buf[10..14].try_into().ok()?);
            if buf[0] == KIND_ECHO_REQUEST {
                Payload::EchoRequest { id, seq }
            } else {
                Payload::EchoReply { id, seq }
            }
        }
        KIND_ROUTE_REQUEST | KIND_ROUTE_OFFER => {
            if buf.len() < 18 {
                return None;
            }
            let target = NodeId(u32::from_le_bytes(buf[6..10].try_into().ok()?));
            let req_id = u64::from_le_bytes(buf[10..18].try_into().ok()?);
            Payload::Control(if buf[0] == KIND_ROUTE_REQUEST {
                DrsMsg::RouteRequest { target, req_id }
            } else {
                DrsMsg::RouteOffer { target, req_id }
            })
        }
        _ => return None,
    };
    Some(Datagram { src, net, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let frames = [
            Datagram {
                src: NodeId(3),
                net: NetId::A,
                payload: Payload::EchoRequest { id: 0x0D25, seq: 9 },
            },
            Datagram {
                src: NodeId(0),
                net: NetId::B,
                payload: Payload::EchoReply {
                    id: 0x0D25,
                    seq: 0xFF_FFFF,
                },
            },
            Datagram {
                src: NodeId(7),
                net: NetId(2),
                payload: Payload::Control(DrsMsg::RouteRequest {
                    target: NodeId(1),
                    req_id: u64::MAX,
                }),
            },
            Datagram {
                src: NodeId(1),
                net: NetId::A,
                payload: Payload::Control(DrsMsg::RouteOffer {
                    target: NodeId(7),
                    req_id: 42,
                }),
            },
        ];
        let mut buf = [0u8; MAX_DATAGRAM];
        for f in frames {
            let n = encode(&f, &mut buf);
            assert_eq!(decode(&buf[..n]), Some(f), "{f:?}");
        }
    }

    #[test]
    fn garbage_is_dropped_not_panicked() {
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[9; 14]), None, "unknown kind");
        assert_eq!(decode(&[1; 5]), None, "truncated echo");
        assert_eq!(decode(&[3; 14]), None, "truncated control");
    }
}
