//! The live backend: real daemons on real UDP sockets over loopback.
//!
//! Each node gets **one UDP socket per plane** (the analogue of one NIC
//! per network), all bound to `127.0.0.1:0` — an ip-less single-machine
//! mode that needs no interface configuration or privileges. Per node:
//!
//! * one receive thread per plane does blocking `recv_from`, answers
//!   `EchoRequest` datagrams directly (the stack's ICMP auto-reply — the
//!   daemon is never involved, exactly like the DES kernel), and forwards
//!   everything else to the node's event loop;
//! * one event-loop thread owns the daemon and a [`LiveIo`], multiplexing
//!   a monotonic timer heap against the inbound channel — the live
//!   equivalent of the DES event queue, with `Instant` as the clock.
//!
//! A **plane failure** is injected at the socket layer: a shared
//! per-plane flag that makes every sender skip and every receiver drop
//! datagrams on that plane — the loopback analogue of a hub losing
//! power. Probes stop flowing, daemons time out, declare links down and
//! fail over, and their event logs (stamped in nanoseconds since the
//! cluster epoch) yield a *real* failover latency to compare against the
//! DES prediction (`drs-bench --bin live_cluster`).
//!
//! Everything here is `std`: blocking sockets, threads, channels. In
//! sandboxes that forbid even loopback sockets, [`LiveCluster::bind`]
//! reports [`LiveOutcome::Skipped`] instead of failing, so tests and
//! smoke drivers degrade gracefully.

use std::collections::BinaryHeap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use drs_core::config::DrsConfig;
use drs_core::io::DrsIo;
use drs_core::messages::DrsMsg;
use drs_core::routes::{Route, RouteTable};
use drs_core::stats::ProbeObs;
use drs_core::time::{SimDuration, SimTime};
use drs_core::{DrsDaemon, NetId, NodeId};
use drs_obs::flight::{EventRef, TraceKind};

use crate::wire::{self, Datagram, Payload, MAX_DATAGRAM};

/// Shape of a live loopback cluster.
#[derive(Debug, Clone, Copy)]
pub struct LiveClusterSpec {
    /// Number of nodes (threads), `>= 2`.
    pub n: usize,
    /// Number of planes (sockets per node), `>= 2`.
    pub planes: u8,
    /// Daemon configuration. Live runs want probe intervals in the tens
    /// of milliseconds so a smoke test converges in wall-clock seconds.
    pub cfg: DrsConfig,
}

/// What one live run produced.
#[derive(Debug)]
pub struct LiveReport {
    /// Per-node daemon state after shutdown (metrics, event log).
    pub daemons: Vec<DrsDaemon>,
    /// Per-node route table at shutdown.
    pub routes: Vec<RouteTable>,
    /// Per-node probe observations (RTTs, detection latencies).
    pub obs: Vec<ProbeObs>,
    /// Nanoseconds since cluster epoch at which the plane was killed
    /// (`None` when no failure was injected).
    pub fail_at: Option<SimTime>,
}

impl LiveReport {
    /// Failure-detection latency per node for `plane`: first `LinkDown`
    /// on that plane logged after the injection, minus the injection
    /// time. Nodes that never noticed report `None`.
    #[must_use]
    pub fn detection_latencies(&self, plane: NetId) -> Vec<Option<SimDuration>> {
        let Some(fail_at) = self.fail_at else {
            return vec![None; self.daemons.len()];
        };
        self.daemons
            .iter()
            .map(|d| {
                d.metrics
                    .first_after(fail_at, |k| {
                        matches!(k, drs_core::metrics::DrsEventKind::LinkDown { net, .. }
                            if *net == plane)
                    })
                    .map(|e| e.at - fail_at)
            })
            .collect()
    }
}

/// Result of attempting a live run: ran, or skipped because the
/// environment refused loopback sockets.
#[derive(Debug)]
pub enum LiveOutcome {
    /// The cluster ran; here is what happened.
    Ran(LiveReport),
    /// Sockets could not be bound (sandbox); reason attached.
    Skipped(String),
}

/// A bound-but-not-yet-running live cluster.
pub struct LiveCluster {
    spec: LiveClusterSpec,
    sockets: Vec<Vec<UdpSocket>>,
    addrs: Arc<Vec<Vec<SocketAddr>>>,
    plane_up: Arc<Vec<AtomicBool>>,
}

impl LiveCluster {
    /// Binds `n × planes` loopback sockets. Returns `Err` with the OS
    /// error string when the environment refuses (callers usually map
    /// that to [`LiveOutcome::Skipped`]).
    ///
    /// # Panics
    /// Panics on a degenerate spec (`n < 2` or `planes < 2`).
    pub fn bind(spec: LiveClusterSpec) -> Result<Self, String> {
        assert!(spec.n >= 2, "a cluster needs two nodes");
        assert!(spec.planes >= 2, "DRS needs redundant planes");
        let mut sockets = Vec::with_capacity(spec.n);
        let mut addrs = Vec::with_capacity(spec.n);
        for _ in 0..spec.n {
            let mut per_plane = Vec::with_capacity(spec.planes as usize);
            let mut a = Vec::with_capacity(spec.planes as usize);
            for _ in 0..spec.planes {
                let sock = UdpSocket::bind("127.0.0.1:0")
                    .map_err(|e| format!("loopback bind refused: {e}"))?;
                a.push(
                    sock.local_addr()
                        .map_err(|e| format!("local_addr failed: {e}"))?,
                );
                per_plane.push(sock);
            }
            sockets.push(per_plane);
            addrs.push(a);
        }
        let plane_up = (0..spec.planes).map(|_| AtomicBool::new(true)).collect();
        Ok(LiveCluster {
            spec,
            sockets,
            addrs: Arc::new(addrs),
            plane_up: Arc::new(plane_up),
        })
    }

    /// Runs the cluster: `warmup` of healthy probing, then (optionally)
    /// kill `fail_plane` at the socket layer, run `after` longer, stop,
    /// and collect every daemon.
    ///
    /// # Panics
    /// Panics if a node thread panicked.
    #[must_use]
    pub fn run(self, warmup: Duration, fail_plane: Option<NetId>, after: Duration) -> LiveReport {
        let epoch = Instant::now();
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(self.spec.n);
        for (i, planes) in self.sockets.into_iter().enumerate() {
            let node = NodeId(i as u32);
            let spec = self.spec;
            let addrs = Arc::clone(&self.addrs);
            let plane_up = Arc::clone(&self.plane_up);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                run_node(node, spec, planes, addrs, plane_up, epoch, stop)
            }));
        }
        thread::sleep(warmup);
        let fail_at = fail_plane.map(|p| {
            self.plane_up[p.idx()].store(false, Ordering::SeqCst);
            SimTime(elapsed_ns(epoch))
        });
        thread::sleep(after);
        stop.store(true, Ordering::SeqCst);
        let mut daemons = Vec::new();
        let mut routes = Vec::new();
        let mut obs = Vec::new();
        for h in handles {
            let (d, r, o) = h.join().expect("node thread panicked");
            daemons.push(d);
            routes.push(r);
            obs.push(o);
        }
        LiveReport {
            daemons,
            routes,
            obs,
            fail_at,
        }
    }
}

fn elapsed_ns(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// `DrsIo` over sockets and the wall clock, owned by one node's event
/// loop. Public so custom live drivers can be written outside this
/// module, though most callers want [`LiveCluster`].
pub struct LiveIo {
    node: NodeId,
    planes: u8,
    /// Send half of each plane socket (receive halves live in the
    /// per-plane receiver threads).
    sockets: Vec<UdpSocket>,
    addrs: Arc<Vec<Vec<SocketAddr>>>,
    plane_up: Arc<Vec<AtomicBool>>,
    /// Frozen at handler entry, per the `DrsIo` contract.
    now: SimTime,
    /// Monotonic timer heap: `(deadline ns, token)`, earliest first.
    timers: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    routes: RouteTable,
    obs: ProbeObs,
    /// SplitMix64 state for `pick` — seeded per node; live draws need no
    /// cross-run reproducibility, only uniformity.
    rng: u64,
}

impl LiveIo {
    fn send(&mut self, net: NetId, dst: NodeId, payload: Payload) {
        if !self.plane_up[net.idx()].load(Ordering::Relaxed) {
            return; // the plane's hub is dead: nothing transmits
        }
        let mut buf = [0u8; MAX_DATAGRAM];
        let len = wire::encode(
            &Datagram {
                src: self.node,
                net,
                payload,
            },
            &mut buf,
        );
        // UDP: errors are silent loss, which is what the protocol is
        // built to survive.
        let _ = self.sockets[net.idx()].send_to(&buf[..len], self.addrs[dst.idx()][net.idx()]);
    }

    fn splitmix(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl DrsIo for LiveIo {
    fn now(&self) -> SimTime {
        self.now
    }

    fn planes(&self) -> u8 {
        self.planes
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.splitmix() % n as u64) as usize
    }

    fn send_echo_traced(
        &mut self,
        net: NetId,
        dst: NodeId,
        id: u32,
        seq: u32,
        _flight: Option<EventRef>,
    ) {
        self.obs.probe_bytes += 74; // ICMP-on-ethernet wire size, as in the DES
        self.send(net, dst, Payload::EchoRequest { id, seq });
    }

    fn send_control(&mut self, net: NetId, dst: NodeId, msg: DrsMsg) {
        self.send(net, dst, Payload::Control(msg));
    }

    fn broadcast_control(&mut self, net: NetId, msg: DrsMsg) {
        // Loopback UDP has no broadcast domain per plane; fan out.
        for i in 0..self.addrs.len() {
            let dst = NodeId(i as u32);
            if dst != self.node {
                self.send(net, dst, Payload::Control(msg));
            }
        }
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let deadline = self.now.0.saturating_add(delay.as_nanos());
        self.timers.push(std::cmp::Reverse((deadline, token)));
    }

    fn set_route(&mut self, dst: NodeId, route: Route) {
        self.routes.set(dst, route);
    }

    fn route(&self, dst: NodeId) -> Option<Route> {
        self.routes.get(dst)
    }

    fn routes(&self) -> &RouteTable {
        &self.routes
    }

    fn probe_obs_mut(&mut self) -> &mut ProbeObs {
        &mut self.obs
    }

    fn flight_record(
        &mut self,
        _kind: TraceKind,
        _plane: Option<NetId>,
        _arg: u64,
        _cause: Option<EventRef>,
    ) -> Option<EventRef> {
        None // no flight ring in the live backend (yet)
    }

    fn flight_pin(&mut self, _r: EventRef) {}

    fn flight_release(&mut self, _r: EventRef) {}
}

/// One node: spawn per-plane receivers, boot the daemon, multiplex
/// timers against inbound datagrams until `stop`.
fn run_node(
    node: NodeId,
    spec: LiveClusterSpec,
    sockets: Vec<UdpSocket>,
    addrs: Arc<Vec<Vec<SocketAddr>>>,
    plane_up: Arc<Vec<AtomicBool>>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
) -> (DrsDaemon, RouteTable, ProbeObs) {
    let (tx, rx) = mpsc::channel::<(NodeId, NetId, Payload)>();
    let mut recv_handles = Vec::new();
    let mut send_halves = Vec::new();
    for (p, sock) in sockets.into_iter().enumerate() {
        let net = NetId(p as u8);
        send_halves.push(sock.try_clone().expect("socket clone"));
        let reply_sock = sock.try_clone().expect("socket clone");
        let tx = tx.clone();
        let addrs = Arc::clone(&addrs);
        let plane_up = Arc::clone(&plane_up);
        let stop = Arc::clone(&stop);
        recv_handles.push(thread::spawn(move || {
            recv_loop(node, net, &sock, &reply_sock, &addrs, &plane_up, &stop, &tx);
        }));
    }
    drop(tx);

    let mut io = LiveIo {
        node,
        planes: spec.planes,
        sockets: send_halves,
        addrs,
        plane_up,
        now: SimTime(elapsed_ns(epoch)),
        timers: BinaryHeap::new(),
        routes: RouteTable::new_default(node, spec.n),
        obs: ProbeObs::default(),
        rng: 0x5EED ^ (u64::from(node.0) << 32),
    };
    let mut daemon = DrsDaemon::new(node, spec.n, spec.cfg);
    daemon.handle_start(&mut io);

    while !stop.load(Ordering::SeqCst) {
        // Fire everything due, then sleep until the next deadline (capped
        // so the stop flag is honoured promptly).
        let now_ns = elapsed_ns(epoch);
        while let Some(&std::cmp::Reverse((deadline, token))) = io.timers.peek() {
            if deadline > now_ns {
                break;
            }
            io.timers.pop();
            io.now = SimTime(elapsed_ns(epoch));
            daemon.handle_timer(&mut io, token);
        }
        let wait = io
            .timers
            .peek()
            .map_or(Duration::from_millis(5), |&std::cmp::Reverse((d, _))| {
                Duration::from_nanos(d.saturating_sub(elapsed_ns(epoch))).min(Duration::from_millis(5))
            });
        match rx.recv_timeout(wait) {
            Ok((from, net, payload)) => {
                io.now = SimTime(elapsed_ns(epoch));
                match payload {
                    Payload::EchoReply { id, seq } => {
                        daemon.handle_echo_reply(&mut io, from, net, id, seq);
                    }
                    Payload::Control(msg) => daemon.handle_control(&mut io, from, net, &msg),
                    // Echo requests are answered by the receiver thread
                    // and never forwarded; tolerate one anyway.
                    Payload::EchoRequest { .. } => {}
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    for h in recv_handles {
        let _ = h.join();
    }
    (daemon, io.routes, io.obs)
}

/// Per-plane receiver: drop datagrams on dead planes, answer echo
/// requests in the stack (never waking the daemon), forward the rest.
/// Exits on `stop`, a closed channel, or a hard socket error.
#[allow(clippy::too_many_arguments)]
fn recv_loop(
    node: NodeId,
    net: NetId,
    sock: &UdpSocket,
    reply_sock: &UdpSocket,
    addrs: &[Vec<SocketAddr>],
    plane_up: &[AtomicBool],
    stop: &AtomicBool,
    tx: &mpsc::Sender<(NodeId, NetId, Payload)>,
) {
    sock.set_read_timeout(Some(Duration::from_millis(20)))
        .expect("read timeout");
    let mut buf = [0u8; 64];
    while !stop.load(Ordering::SeqCst) {
        let len = match sock.recv_from(&mut buf) {
            Ok((len, _)) => len,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        if !plane_up[net.idx()].load(Ordering::Relaxed) {
            continue; // dead plane: the wire eats everything
        }
        let Some(d) = wire::decode(&buf[..len]) else {
            continue;
        };
        if d.net != net {
            continue; // mis-planed datagram: treat as corruption
        }
        match d.payload {
            Payload::EchoRequest { id, seq } => {
                // Stack-level auto-reply, same plane, daemon asleep —
                // mirrors the DES kernel's EchoRequest handling.
                let mut out = [0u8; MAX_DATAGRAM];
                let n = wire::encode(
                    &Datagram {
                        src: node,
                        net,
                        payload: Payload::EchoReply { id, seq },
                    },
                    &mut out,
                );
                let _ = reply_sock.send_to(&out[..n], addrs[d.src.idx()][net.idx()]);
            }
            other => {
                if tx.send((d.src, net, other)).is_err() {
                    return;
                }
            }
        }
    }
}
