//! Server hardware inventory and per-class annual failure rates.

use serde::{Deserialize, Serialize};

/// A failable hardware component class in a late-1990s server cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentClass {
    /// Network interface card (two per server).
    Nic,
    /// Network cabling/connector (one run per NIC).
    Cable,
    /// Shared network hub / backplane (two per cluster).
    Hub,
    /// Hard disk.
    Disk,
    /// Memory module.
    Memory,
    /// Power supply unit.
    PowerSupply,
    /// Cooling fan.
    Fan,
    /// Processor.
    Cpu,
    /// Motherboard / backplane electronics.
    Motherboard,
}

impl ComponentClass {
    /// Every class, network classes first.
    pub const ALL: [ComponentClass; 9] = [
        ComponentClass::Nic,
        ComponentClass::Cable,
        ComponentClass::Hub,
        ComponentClass::Disk,
        ComponentClass::Memory,
        ComponentClass::PowerSupply,
        ComponentClass::Fan,
        ComponentClass::Cpu,
        ComponentClass::Motherboard,
    ];

    /// Whether a failure of this class counts as "network related" in the
    /// paper's sense ("network interface cards, hubs, etc.").
    #[must_use]
    pub fn is_network(self) -> bool {
        matches!(
            self,
            ComponentClass::Nic | ComponentClass::Cable | ComponentClass::Hub
        )
    }

    /// How many instances of this class one *server* carries (hubs are
    /// cluster-level and return 0 here).
    #[must_use]
    pub fn per_server(self) -> u32 {
        match self {
            ComponentClass::Nic | ComponentClass::Cable => 2, // dual-network
            ComponentClass::Hub => 0,
            _ => 1,
        }
    }

    /// Instances per cluster that are shared rather than per-server.
    #[must_use]
    pub fn per_cluster(self) -> u32 {
        match self {
            ComponentClass::Hub => 2,
            _ => 0,
        }
    }
}

/// Annual failure rates per component *instance* (Poisson intensity,
/// events per instance-year).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureRates {
    /// NIC failures per card-year.
    pub nic: f64,
    /// Cable/connector failures per run-year.
    pub cable: f64,
    /// Hub failures per hub-year.
    pub hub: f64,
    /// Disk failures per drive-year.
    pub disk: f64,
    /// Memory failures per module-year.
    pub memory: f64,
    /// PSU failures per unit-year.
    pub power_supply: f64,
    /// Fan failures per fan-year.
    pub fan: f64,
    /// CPU failures per socket-year.
    pub cpu: f64,
    /// Motherboard failures per board-year.
    pub motherboard: f64,
}

impl Default for FailureRates {
    /// Rates calibrated (see crate docs) so a 10-servers-per-cluster
    /// fleet has an expected network-related failure share of ≈13 %.
    fn default() -> Self {
        FailureRates {
            nic: 0.005,
            cable: 0.003,
            hub: 0.017,
            disk: 0.050,
            memory: 0.015,
            power_supply: 0.022,
            fan: 0.025,
            cpu: 0.005,
            motherboard: 0.012,
        }
    }
}

impl FailureRates {
    /// Rate for one class.
    #[must_use]
    pub fn rate(&self, class: ComponentClass) -> f64 {
        match class {
            ComponentClass::Nic => self.nic,
            ComponentClass::Cable => self.cable,
            ComponentClass::Hub => self.hub,
            ComponentClass::Disk => self.disk,
            ComponentClass::Memory => self.memory,
            ComponentClass::PowerSupply => self.power_supply,
            ComponentClass::Fan => self.fan,
            ComponentClass::Cpu => self.cpu,
            ComponentClass::Motherboard => self.motherboard,
        }
    }

    /// Expected failures per server-year, including this server's share
    /// of the cluster hubs (`servers_per_cluster` spreads hub events).
    #[must_use]
    pub fn expected_per_server_year(&self, servers_per_cluster: f64) -> f64 {
        assert!(servers_per_cluster >= 1.0);
        ComponentClass::ALL
            .iter()
            .map(|&c| {
                self.rate(c)
                    * (c.per_server() as f64 + c.per_cluster() as f64 / servers_per_cluster)
            })
            .sum()
    }

    /// Expected *network* share of failures for the given cluster size —
    /// the analytic counterpart of the 13 % statistic.
    #[must_use]
    pub fn expected_network_fraction(&self, servers_per_cluster: f64) -> f64 {
        let net: f64 = ComponentClass::ALL
            .iter()
            .filter(|c| c.is_network())
            .map(|&c| {
                self.rate(c)
                    * (c.per_server() as f64 + c.per_cluster() as f64 / servers_per_cluster)
            })
            .sum();
        net / self.expected_per_server_year(servers_per_cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_classification() {
        assert!(ComponentClass::Nic.is_network());
        assert!(ComponentClass::Cable.is_network());
        assert!(ComponentClass::Hub.is_network());
        assert!(!ComponentClass::Disk.is_network());
        assert!(!ComponentClass::Fan.is_network());
    }

    #[test]
    fn inventory_counts() {
        assert_eq!(ComponentClass::Nic.per_server(), 2);
        assert_eq!(ComponentClass::Hub.per_server(), 0);
        assert_eq!(ComponentClass::Hub.per_cluster(), 2);
        assert_eq!(ComponentClass::Disk.per_server(), 1);
    }

    #[test]
    fn default_rates_hit_thirteen_percent() {
        let rates = FailureRates::default();
        let frac = rates.expected_network_fraction(10.0);
        assert!(
            (frac - 0.13).abs() < 0.005,
            "calibration drifted: expected ≈0.13, got {frac:.4}"
        );
    }

    #[test]
    fn expected_rate_scale_is_plausible() {
        // Mid-teens failures per 100 server-years: in the ballpark the
        // paper's field numbers imply.
        let per_hundred = FailureRates::default().expected_per_server_year(10.0) * 100.0;
        assert!(
            (10.0..25.0).contains(&per_hundred),
            "{per_hundred} failures / 100 server-years"
        );
    }

    #[test]
    fn smaller_clusters_shift_share_toward_hubs() {
        let rates = FailureRates::default();
        assert!(
            rates.expected_network_fraction(4.0) > rates.expected_network_fraction(16.0),
            "hub share is amortized over fewer servers in small clusters"
        );
    }
}
