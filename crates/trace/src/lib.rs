//! The deployment motivation study, reproduced synthetically.
//!
//! The paper's opening claim: *"We evaluated one hundred deployed systems
//! and found that over a one-year period, thirteen percent of the
//! hardware failures were network related"* — NICs, hubs, cabling. That
//! field data is proprietary and lost to time, so this crate builds the
//! closest synthetic equivalent (documented in DESIGN.md §4):
//!
//! * a **component inventory** per server (disk, memory, PSU, fan, CPU,
//!   motherboard, two NICs, two cables) plus two shared hubs per cluster,
//!   with per-class annual failure rates calibrated from late-1990s
//!   availability folklore so that the *expected* network share is ≈13 %
//!   ([`components`]);
//! * a **Poisson trace generator** producing one-year failure logs for a
//!   100-server fleet ([`fleet`]);
//! * the **classification pipeline** that computes the network-related
//!   fraction from a trace, and the **masking analysis** estimating how
//!   many of those network failures DRS would have hidden from
//!   applications ([`study`]).
//!
//! The headline number is a *model output* here, not field data — the
//! point is to exercise the same pipeline and show the statistic's
//! seed-to-seed spread.

pub mod components;
pub mod fleet;
pub mod study;

pub use components::{ComponentClass, FailureRates};
pub use fleet::{generate_trace, FailureRecord, FleetSpec};
pub use study::{
    availability_gain, fmt_fraction_pct, masking_analysis, network_fraction, replicate_study,
    replicate_study_profiled, AvailabilityReport, MaskingReport, StudySummary,
};
