//! Fleet failure-trace generation.
//!
//! Failures arrive as independent Poisson processes per component
//! instance. The generator walks every instance in the fleet, samples its
//! event times over the study window, and emits a flat, time-sorted log —
//! the synthetic stand-in for the operations database behind the paper's
//! field study.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::components::{ComponentClass, FailureRates};

/// Description of a deployed fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Number of clusters.
    pub clusters: usize,
    /// Servers in each cluster.
    pub servers_per_cluster: usize,
    /// Study window in days.
    pub duration_days: f64,
    /// Per-class failure intensities.
    pub rates: FailureRates,
}

impl FleetSpec {
    /// The paper's motivation study: one hundred servers observed for a
    /// year (modelled as 10 clusters × 10 servers).
    #[must_use]
    pub fn hundred_servers_one_year() -> Self {
        FleetSpec {
            clusters: 10,
            servers_per_cluster: 10,
            duration_days: 365.0,
            rates: FailureRates::default(),
        }
    }

    /// The commercial deployment: 27 voice-mail clusters of 8–12 servers
    /// (modelled at the midpoint, 10).
    #[must_use]
    pub fn mci_deployment() -> Self {
        FleetSpec {
            clusters: 27,
            servers_per_cluster: 10,
            duration_days: 365.0,
            rates: FailureRates::default(),
        }
    }

    /// Total servers in the fleet.
    #[must_use]
    pub fn total_servers(&self) -> usize {
        self.clusters * self.servers_per_cluster
    }
}

/// One failure event in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Days since the study began.
    pub at_days: f64,
    /// Which cluster the failed component belongs to.
    pub cluster: usize,
    /// Which server within the cluster (`None` for shared hubs).
    pub server: Option<usize>,
    /// The failed component class.
    pub class: ComponentClass,
}

impl FailureRecord {
    /// Whether this record counts as network related.
    #[must_use]
    pub fn is_network(&self) -> bool {
        self.class.is_network()
    }
}

/// Samples event times of a Poisson process with `rate` events/year over
/// `duration_days`, in days.
fn poisson_times(rate_per_year: f64, duration_days: f64, rng: &mut SmallRng) -> Vec<f64> {
    debug_assert!(rate_per_year >= 0.0);
    let mut times = Vec::new();
    let daily = rate_per_year / 365.0;
    if daily <= 0.0 {
        return times;
    }
    let mut t = 0.0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / daily;
        if t >= duration_days {
            return times;
        }
        times.push(t);
    }
}

/// The seed for replication `index` of a study derived from `master`:
/// the workspace-wide SplitMix64 stream ([`drs_harness::stream_seed`]).
///
/// This replaces the old `master.wrapping_add(i).wrapping_mul(…)` scheme,
/// whose consecutive outputs differed by a fixed constant and fed
/// correlated states into the trace generator's `SmallRng` — a bias in
/// the replicated fleet study.
#[must_use]
pub fn replication_seed(master: u64, index: u64) -> u64 {
    drs_harness::stream_seed(master, index)
}

/// Generates the trace for replication `index` of a study seeded by
/// `master` — [`generate_trace`] under [`replication_seed`], the exact
/// per-trial seed [`crate::study::replicate_study`] uses, so one
/// replication can be reproduced without re-running the study.
#[must_use]
pub fn generate_replication(spec: &FleetSpec, master: u64, index: u64) -> Vec<FailureRecord> {
    generate_trace(spec, replication_seed(master, index))
}

/// Generates a complete, time-sorted failure trace for a fleet.
#[must_use]
pub fn generate_trace(spec: &FleetSpec, seed: u64) -> Vec<FailureRecord> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for cluster in 0..spec.clusters {
        // Shared components.
        for class in ComponentClass::ALL {
            for _ in 0..class.per_cluster() {
                for at_days in poisson_times(spec.rates.rate(class), spec.duration_days, &mut rng) {
                    records.push(FailureRecord {
                        at_days,
                        cluster,
                        server: None,
                        class,
                    });
                }
            }
        }
        // Per-server components.
        for server in 0..spec.servers_per_cluster {
            for class in ComponentClass::ALL {
                for _ in 0..class.per_server() {
                    for at_days in
                        poisson_times(spec.rates.rate(class), spec.duration_days, &mut rng)
                    {
                        records.push(FailureRecord {
                            at_days,
                            cluster,
                            server: Some(server),
                            class,
                        });
                    }
                }
            }
        }
    }
    records.sort_by(|a, b| a.at_days.total_cmp(&b.at_days));
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_sorted_and_in_window() {
        let spec = FleetSpec::hundred_servers_one_year();
        let trace = generate_trace(&spec, 1);
        assert!(trace.windows(2).all(|w| w[0].at_days <= w[1].at_days));
        assert!(trace
            .iter()
            .all(|r| r.at_days >= 0.0 && r.at_days < spec.duration_days));
    }

    #[test]
    fn hub_records_have_no_server() {
        let spec = FleetSpec::mci_deployment();
        let trace = generate_trace(&spec, 2);
        for r in &trace {
            assert_eq!(r.server.is_none(), r.class == ComponentClass::Hub, "{r:?}");
            assert!(r.cluster < spec.clusters);
            if let Some(s) = r.server {
                assert!(s < spec.servers_per_cluster);
            }
        }
    }

    #[test]
    fn event_count_matches_expectation_over_seeds() {
        // E[failures] per 100 server-years ≈ 14.8; average over seeds
        // should land near it.
        let spec = FleetSpec::hundred_servers_one_year();
        let expected = spec
            .rates
            .expected_per_server_year(spec.servers_per_cluster as f64)
            * spec.total_servers() as f64;
        let mean = (0..200u64)
            .map(|s| generate_trace(&spec, s).len() as f64)
            .sum::<f64>()
            / 200.0;
        assert!(
            (mean - expected).abs() / expected < 0.10,
            "mean {mean:.2} vs expected {expected:.2}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = FleetSpec::hundred_servers_one_year();
        assert_eq!(generate_trace(&spec, 9), generate_trace(&spec, 9));
    }

    #[test]
    fn replication_helper_uses_the_shared_stream() {
        let spec = FleetSpec::hundred_servers_one_year();
        assert_eq!(
            generate_replication(&spec, 13, 4),
            generate_trace(&spec, drs_harness::stream_seed(13, 4))
        );
        // The stream must not reproduce the weak legacy derivation, whose
        // consecutive seeds were an affine sequence.
        let legacy = |seed: u64, i: u64| seed.wrapping_add(i).wrapping_mul(0x9E37_79B9);
        assert_ne!(replication_seed(13, 0), legacy(13, 0));
        let d0 = replication_seed(13, 1).wrapping_sub(replication_seed(13, 0));
        let d1 = replication_seed(13, 2).wrapping_sub(replication_seed(13, 1));
        assert_ne!(d0, d1, "replication seeds form an affine sequence");
    }

    #[test]
    fn zero_rate_means_no_events() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(poisson_times(0.0, 365.0, &mut rng).is_empty());
    }
}
