//! The study pipeline: classify traces, replicate the 13 % statistic, and
//! estimate how many network failures DRS masks.

use drs_harness::{Experiment, NullProfiler, Profiler, RunMode, Summary};
use serde::{Deserialize, Serialize};

use crate::fleet::{generate_trace, FailureRecord, FleetSpec};

/// Network-related share of the failures in one trace (`None` for an
/// empty trace — no failures, nothing to classify).
#[must_use]
pub fn network_fraction(trace: &[FailureRecord]) -> Option<f64> {
    if trace.is_empty() {
        return None;
    }
    let net = trace.iter().filter(|r| r.is_network()).count();
    Some(net as f64 / trace.len() as f64)
}

/// Formats an optional fraction as a percentage, printing `—` when there
/// were no samples to classify — "no failures observed" must never read
/// as "0.0% of failures were network-related".
#[must_use]
pub fn fmt_fraction_pct(fraction: Option<f64>) -> String {
    fraction.map_or_else(|| "—".to_string(), |f| format!("{:.1}%", f * 100.0))
}

/// Summary of the statistic over many independent replications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudySummary {
    /// Replications run.
    pub replications: usize,
    /// Replications whose trace was non-empty and therefore contributed
    /// a classified network fraction. When this is zero, every fraction
    /// statistic below is a well-defined `0.0`, not `NaN`.
    pub classified: usize,
    /// Mean failures observed per replication.
    pub mean_failures: f64,
    /// Mean network fraction.
    pub mean_network_fraction: f64,
    /// Sample standard deviation of the network fraction.
    pub std_network_fraction: f64,
    /// Smallest observed fraction.
    pub min_fraction: f64,
    /// Largest observed fraction.
    pub max_fraction: f64,
}

/// Replicates the paper's one-year study over `replications` independent
/// trials of a [`drs_harness::Experiment`].
///
/// Per-trial seeds come from the shared SplitMix64 stream
/// ([`crate::fleet::replication_seed`]); trials fan out across the rayon
/// pool, and because each replication is an independent function of its
/// seed the result is identical to a serial run. A study in which every
/// replication yields an empty trace (zeroed failure rates, tiny windows)
/// reports zeroed fraction statistics with `classified == 0` rather than
/// `NaN` mean/std and an infinite minimum.
///
/// # Panics
/// Panics if `replications == 0`.
#[must_use]
pub fn replicate_study(spec: &FleetSpec, replications: usize, seed: u64) -> StudySummary {
    replicate_study_profiled(spec, replications, seed, &NullProfiler)
}

/// [`replicate_study`] with per-replication wall-clock timings reported to
/// `profiler` under the experiment name `fleet-study`.
///
/// The profiler observes and cannot influence: with [`NullProfiler`] this
/// is exactly [`replicate_study`], and any other profiler sees timings
/// without changing a single statistic — wall-clock goes to the terminal,
/// never into committed artifacts.
///
/// # Panics
/// Panics if `replications == 0`.
#[must_use]
pub fn replicate_study_profiled(
    spec: &FleetSpec,
    replications: usize,
    seed: u64,
    profiler: &dyn Profiler,
) -> StudySummary {
    assert!(replications > 0, "need at least one replication");
    let exp = Experiment::replications("fleet-study", seed, replications);
    let per_trial: Vec<(usize, Option<f64>)> =
        exp.run_profiled(RunMode::Parallel, profiler, |ctx, ()| {
            let trace = generate_trace(spec, ctx.seed);
            (trace.len(), network_fraction(&trace))
        });
    let total_failures: usize = per_trial.iter().map(|(len, _)| len).sum();
    let fractions: Vec<f64> = per_trial.iter().filter_map(|(_, frac)| *frac).collect();
    let stats = Summary::of(&fractions);
    StudySummary {
        replications,
        classified: stats.count,
        mean_failures: total_failures as f64 / replications as f64,
        mean_network_fraction: stats.mean,
        std_network_fraction: stats.std,
        min_fraction: stats.min,
        max_fraction: stats.max,
    }
}

/// How DRS changes the *application impact* of the network failures in a
/// trace.
///
/// Without DRS, every network failure interrupts server-to-server
/// communication until repaired. With DRS, a network failure is masked
/// (survivable via the redundant network or a gateway) unless another
/// network failure in the **same cluster** overlaps it in time in a
/// disconnecting combination; as a conservative bound we count any
/// same-cluster overlap as unmasked.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaskingReport {
    /// Network failures in the trace.
    pub network_failures: usize,
    /// Failures DRS masks (no overlapping same-cluster network fault).
    pub masked: usize,
    /// Conservative count of potentially service-affecting failures.
    pub unmasked: usize,
}

impl MaskingReport {
    /// Fraction of network failures DRS hides from applications.
    #[must_use]
    pub fn masked_fraction(&self) -> f64 {
        if self.network_failures == 0 {
            1.0
        } else {
            self.masked as f64 / self.network_failures as f64
        }
    }
}

/// Computes the masking report for a trace, assuming each failure takes
/// `mttr_days` to repair.
#[must_use]
pub fn masking_analysis(trace: &[FailureRecord], mttr_days: f64) -> MaskingReport {
    assert!(mttr_days >= 0.0);
    let net: Vec<&FailureRecord> = trace.iter().filter(|r| r.is_network()).collect();
    let mut masked = 0usize;
    for (i, r) in net.iter().enumerate() {
        let overlaps = net.iter().enumerate().any(|(j, other)| {
            i != j
                && other.cluster == r.cluster
                && other.at_days < r.at_days + mttr_days
                && r.at_days < other.at_days + mttr_days
        });
        if !overlaps {
            masked += 1;
        }
    }
    MaskingReport {
        network_failures: net.len(),
        masked,
        unmasked: net.len() - masked,
    }
}

/// Availability impact: what fraction of cluster downtime the masked
/// network failures would have caused, and the resulting availability
/// with and without DRS.
///
/// Model: every *unmasked-by-anything* failure (non-network failures are
/// never masked; network failures are masked per [`masking_analysis`])
/// takes the affected cluster's service down for `mttr_days`. Downtime is
/// attributed per cluster and averaged over the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityReport {
    /// Mean per-cluster availability without DRS (network failures all
    /// cause outage).
    pub availability_without: f64,
    /// Mean per-cluster availability with DRS (masked network failures
    /// cause none).
    pub availability_with: f64,
    /// Network-caused downtime eliminated, in cluster-days per year
    /// across the fleet.
    pub downtime_saved_days: f64,
}

/// Computes the availability gain DRS provides on a trace.
///
/// Only network failures are considered maskable; every failure (masked
/// or not) still needs `mttr_days` of field service — DRS changes
/// *service* downtime, not repair effort.
#[must_use]
pub fn availability_gain(
    trace: &[FailureRecord],
    clusters: usize,
    duration_days: f64,
    mttr_days: f64,
) -> AvailabilityReport {
    assert!(clusters > 0 && duration_days > 0.0 && mttr_days >= 0.0);
    let masking = masking_analysis(trace, mttr_days);
    let network_downtime_all = masking.network_failures as f64 * mttr_days;
    let network_downtime_unmasked = masking.unmasked as f64 * mttr_days;
    // Non-network failures affect only the one server, not cluster-wide
    // connectivity; the paper's survivability concern is the network, so
    // the availability deltas here are network-attributable downtime.
    let total_cluster_days = clusters as f64 * duration_days;
    AvailabilityReport {
        availability_without: 1.0 - network_downtime_all / total_cluster_days,
        availability_with: 1.0 - network_downtime_unmasked / total_cluster_days,
        downtime_saved_days: network_downtime_all - network_downtime_unmasked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ComponentClass;

    fn rec(at_days: f64, cluster: usize, class: ComponentClass) -> FailureRecord {
        FailureRecord {
            at_days,
            cluster,
            server: Some(0),
            class,
        }
    }

    #[test]
    fn fraction_of_empty_trace_is_none() {
        assert_eq!(network_fraction(&[]), None);
    }

    #[test]
    fn no_samples_prints_a_dash_not_zero_percent() {
        assert_eq!(fmt_fraction_pct(network_fraction(&[])), "—");
        assert_eq!(fmt_fraction_pct(Some(0.13)), "13.0%");
        assert_eq!(fmt_fraction_pct(Some(0.0)), "0.0%");
    }

    #[test]
    fn fraction_counts_network_classes() {
        let trace = vec![
            rec(1.0, 0, ComponentClass::Nic),
            rec(2.0, 0, ComponentClass::Disk),
            rec(3.0, 0, ComponentClass::Disk),
            rec(4.0, 0, ComponentClass::Hub),
        ];
        assert_eq!(network_fraction(&trace), Some(0.5));
    }

    #[test]
    fn replicated_study_reproduces_thirteen_percent() {
        let spec = FleetSpec::hundred_servers_one_year();
        let s = replicate_study(&spec, 400, 2026);
        assert!(
            (s.mean_network_fraction - 0.13).abs() < 0.02,
            "mean fraction {:.4}",
            s.mean_network_fraction
        );
        // Small samples (≈15 failures/replication) spread widely — the
        // reason a single-year field number like "13%" carries noise.
        assert!(s.std_network_fraction > 0.03);
        assert!(s.mean_failures > 5.0 && s.mean_failures < 40.0);
    }

    #[test]
    fn all_empty_replications_yield_zeroed_summary_not_nan() {
        // Regression: with every failure rate zeroed, each replication's
        // trace is empty, so no network fraction is ever classified. The
        // old implementation divided 0/0 (NaN mean/std) and folded min
        // from +inf; the summary must now be finite and all-zero.
        let mut spec = FleetSpec::hundred_servers_one_year();
        spec.rates = crate::components::FailureRates {
            nic: 0.0,
            cable: 0.0,
            hub: 0.0,
            disk: 0.0,
            memory: 0.0,
            power_supply: 0.0,
            fan: 0.0,
            cpu: 0.0,
            motherboard: 0.0,
        };
        let s = replicate_study(&spec, 8, 1);
        assert_eq!(s.replications, 8);
        assert_eq!(s.classified, 0);
        assert_eq!(s.mean_failures, 0.0);
        assert!(s.mean_network_fraction == 0.0 && s.std_network_fraction == 0.0);
        assert!(s.min_fraction == 0.0 && s.max_fraction == 0.0);
        assert!(
            s.mean_network_fraction.is_finite() && s.min_fraction.is_finite(),
            "summary must never carry NaN/inf"
        );
    }

    #[test]
    fn profiled_study_matches_plain_and_times_every_replication() {
        use drs_harness::WallProfiler;
        let spec = FleetSpec::hundred_servers_one_year();
        let plain = replicate_study(&spec, 16, 7);
        let wall = WallProfiler::new();
        let profiled = replicate_study_profiled(&spec, 16, 7, &wall);
        assert_eq!(profiled, plain, "profiling must not change statistics");
        let report = wall.report();
        assert_eq!(
            report.histogram("fleet-study").map(|h| h.count()),
            Some(16),
            "one wall-clock sample per replication"
        );
    }

    #[test]
    fn replications_use_the_shared_seed_stream() {
        // One replication reproduced by hand through the fleet helper
        // must see exactly the trace the study saw.
        let spec = FleetSpec::hundred_servers_one_year();
        let single = crate::fleet::generate_replication(&spec, 2026, 0);
        let s = replicate_study(&spec, 1, 2026);
        assert_eq!(s.mean_failures, single.len() as f64);
        assert_eq!(s.classified, usize::from(!single.is_empty()));
        if let Some(f) = network_fraction(&single) {
            assert_eq!(s.mean_network_fraction, f);
        }
    }

    #[test]
    fn masking_isolated_failures_all_masked() {
        let trace = vec![
            rec(10.0, 0, ComponentClass::Nic),
            rec(100.0, 0, ComponentClass::Hub),
            rec(10.0, 1, ComponentClass::Cable), // other cluster, same day
        ];
        let r = masking_analysis(&trace, 1.0);
        assert_eq!(r.network_failures, 3);
        assert_eq!(r.masked, 3);
        assert_eq!(r.masked_fraction(), 1.0);
    }

    #[test]
    fn masking_overlap_in_same_cluster_unmasks() {
        let trace = vec![
            rec(10.0, 0, ComponentClass::Nic),
            rec(10.3, 0, ComponentClass::Hub), // overlaps within 1-day MTTR
        ];
        let r = masking_analysis(&trace, 1.0);
        assert_eq!(r.unmasked, 2);
        assert_eq!(r.masked_fraction(), 0.0);
    }

    #[test]
    fn masking_ignores_non_network_overlap() {
        let trace = vec![
            rec(10.0, 0, ComponentClass::Nic),
            rec(10.1, 0, ComponentClass::Disk),
        ];
        let r = masking_analysis(&trace, 1.0);
        assert_eq!(r.network_failures, 1);
        assert_eq!(r.masked, 1);
    }

    #[test]
    fn deployment_scale_masking_is_high() {
        // With ~15 network failures/year spread over 27 clusters and a
        // 4-hour MTTR, same-cluster overlap is vanishingly rare.
        let spec = FleetSpec::mci_deployment();
        let trace = generate_trace(&spec, 7);
        let r = masking_analysis(&trace, 4.0 / 24.0);
        assert!(
            r.masked_fraction() > 0.95,
            "masked {:.3} of {} failures",
            r.masked_fraction(),
            r.network_failures
        );
    }

    #[test]
    fn empty_trace_masking_is_total() {
        let r = masking_analysis(&[], 1.0);
        assert_eq!(r.masked_fraction(), 1.0);
    }

    #[test]
    fn availability_gain_bounds_and_ordering() {
        let spec = FleetSpec::mci_deployment();
        let trace = generate_trace(&spec, 3);
        let r = availability_gain(&trace, spec.clusters, spec.duration_days, 4.0 / 24.0);
        assert!(r.availability_with >= r.availability_without);
        assert!((0.0..=1.0).contains(&r.availability_without));
        assert!((0.0..=1.0).contains(&r.availability_with));
        assert!(r.downtime_saved_days >= 0.0);
    }

    #[test]
    fn availability_gain_all_masked_means_full_network_nines() {
        // Two isolated network failures, 1-day MTTR, one cluster-year.
        let trace = vec![
            rec(10.0, 0, ComponentClass::Nic),
            rec(200.0, 0, ComponentClass::Hub),
        ];
        let r = availability_gain(&trace, 1, 365.0, 1.0);
        assert!((r.availability_without - (1.0 - 2.0 / 365.0)).abs() < 1e-12);
        assert_eq!(r.availability_with, 1.0);
        assert!((r.downtime_saved_days - 2.0).abs() < 1e-12);
    }

    #[test]
    fn availability_gain_unmasked_overlap_still_counts() {
        let trace = vec![
            rec(10.0, 0, ComponentClass::Nic),
            rec(10.2, 0, ComponentClass::Nic), // overlapping: unmasked
        ];
        let r = availability_gain(&trace, 1, 365.0, 1.0);
        assert_eq!(r.downtime_saved_days, 0.0);
        assert_eq!(r.availability_with, r.availability_without);
    }
}
