//! # drs — reproduction of the DRS network-survivability study
//!
//! Facade crate re-exporting the whole workspace: the Dynamic Routing
//! System protocol ([`core`]), the discrete-event cluster simulator it
//! runs on ([`sim`]), the survivability mathematics ([`analytic`]), the
//! reactive baselines ([`baselines`]), the proactive-cost model
//! ([`cost`]), the deployment failure-trace study ([`trace`]), the
//! experiment harness that orchestrates simulation trials ([`harness`]),
//! the unified observability layer — metric registries, spans and
//! the observability artifact ([`obs`]) — the first-class topology
//! graph layer with its datacenter generators and reachability engines
//! ([`topology`]), and the non-DES protocol backends — live loopback
//! UDP and golden-trace replay over the `DrsIo` boundary ([`io`]).
//!
//! See the repository README for a guided tour and `DESIGN.md` for the
//! paper-to-module map.

pub use drs_analytic as analytic;
pub use drs_baselines as baselines;
pub use drs_core as core;
pub use drs_cost as cost;
pub use drs_harness as harness;
pub use drs_io as io;
pub use drs_obs as obs;
pub use drs_sim as sim;
pub use drs_topology as topology;
pub use drs_trace as trace;
