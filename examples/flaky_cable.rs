//! The failure nobody logs: a *degraded* cable that corrupts most frames
//! without going fully dark. DRS's probe stream sees it as what it
//! effectively is — a dead link — and routes around it; a threshold of
//! consecutive misses keeps background noise from causing false alarms.
//!
//! Run: `cargo run --release --example flaky_cable`

use drs::core::{DrsConfig, DrsDaemon};
use drs::sim::{ClusterSpec, NetId, NodeId, Route, SimDuration, SimTime, World};

fn main() {
    let n = 6;
    // 0.5% background frame corruption everywhere: a realistic, slightly
    // noisy shared segment.
    let spec = ClusterSpec::new(n).seed(2026).frame_loss_rate(0.005);
    let cfg = DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(50))
        .probe_interval(SimDuration::from_millis(250))
        .miss_threshold(2); // the deployed setting
    let mut world = World::new(spec, move |id| DrsDaemon::new(id, n, cfg));

    println!("{n} hosts, 0.5% background frame loss, DRS with 2-miss threshold");
    world.run_for(SimDuration::from_secs(20));
    let false_alarms: u64 = (0..n as u32)
        .map(|i| world.protocol(NodeId(i)).metrics.link_down_events)
        .sum();
    println!("after 20 s of noise: {false_alarms} link-down events (false alarms)");

    // Now node 2's net-A cable starts mangling 98% of its frames.
    println!();
    println!(
        "t={}: node 2's net-A cable degrades to 98% frame loss",
        world.now()
    );
    world.set_link_loss(NodeId(2), NetId::A, 0.98);
    world.run_for(SimDuration::from_secs(5));

    let route = world.host(NodeId(0)).routes.get(NodeId(2));
    println!("n0's route to n2 is now: {route:?}");
    assert_eq!(
        route,
        Some(Route::Direct(NetId::B)),
        "routed around the bad cable"
    );

    // Traffic flows cleanly over the redundant network.
    let before = world.app_stats().retransmits;
    for i in (0..n as u32).filter(|&i| i != 2) {
        world.send_app(world.now(), NodeId(i), NodeId(2), 512);
    }
    world.run_for(SimDuration::from_secs(10));
    let s = world.app_stats();
    println!(
        "traffic to n2 after failover: {}/{} delivered, {} retransmits",
        s.delivered,
        s.sent,
        s.retransmits - before
    );

    // The cable gets replaced; DRS reverts to the primary network.
    println!();
    println!("t={}: cable replaced", world.now());
    world.set_link_loss(NodeId(2), NetId::A, 0.0);
    world.run_for(SimDuration::from_secs(5));
    let route = world.host(NodeId(0)).routes.get(NodeId(2));
    println!("n0's route to n2 reverted to: {route:?}");
    assert_eq!(route, Some(Route::Direct(NetId::A)));
    let _ = SimTime::ZERO;
    println!();
    println!("a 98%-lossy cable and its replacement, both handled without operator action.");
}
