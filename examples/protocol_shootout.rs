//! Protocol shootout: the same failure, four routing strategies, one
//! table — the paper's proactive-vs-reactive argument as a runnable demo.
//!
//! Run: `cargo run --release --example protocol_shootout`

use drs::baselines::compare::{run_scenario, ProtocolLabel, ScenarioSpec};
use drs::baselines::ospf::{OspfConfig, OspfDaemon};
use drs::baselines::reactive::{ReactiveConfig, ReactiveDaemon};
use drs::baselines::rip::{RipConfig, RipDaemon};
use drs::baselines::static_route::StaticRouting;
use drs::core::{DrsConfig, DrsDaemon};
use drs::sim::fault::SimComponent;
use drs::sim::{NetId, NodeId, SimDuration};

fn main() {
    println!("one failure, four routing strategies");
    println!("(10 hosts; host 1 loses its primary NIC; 40 probe messages at 4/s)");
    println!();

    let n = 10;
    let spec = ScenarioSpec::standard(n, 99, vec![SimComponent::Nic(NodeId(1), NetId::A)]);

    let drs_cfg = DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(100))
        .probe_interval(SimDuration::from_millis(500));
    let results = vec![
        run_scenario(ProtocolLabel::Drs, &spec, |id| {
            DrsDaemon::new(id, n, drs_cfg)
        }),
        run_scenario(ProtocolLabel::Reactive, &spec, |id| {
            ReactiveDaemon::new(id, ReactiveConfig::default())
        }),
        run_scenario(ProtocolLabel::Ospf, &spec, |id| {
            OspfDaemon::new(id, OspfConfig::default().scaled_down(10))
        }),
        run_scenario(ProtocolLabel::Rip, &spec, |id| {
            RipDaemon::new(id, RipConfig::default().scaled_down(10))
        }),
        run_scenario(ProtocolLabel::Static, &spec, |_| StaticRouting),
    ];

    println!(
        "{:<22} {:>10} {:>12} {:>8} {:>12}",
        "protocol", "delivered", "retransmits", "lost", "outage"
    );
    for r in &results {
        println!(
            "{:<22} {:>7}/{:<3} {:>12} {:>8} {:>12}",
            r.label.to_string(),
            r.delivered,
            r.sent,
            r.retransmits,
            r.gave_up,
            r.outage.map_or("never".to_string(), |d| d.to_string()),
        );
    }

    println!();
    let drs_outage = results[0].outage.expect("DRS stabilizes");
    let rip_outage = results[3].outage.expect("RIP stabilizes");
    println!(
        "DRS restored prompt service {:.0}x faster than the RIP-style baseline",
        rip_outage.as_secs_f64() / drs_outage.as_secs_f64().max(1e-9)
    );
    println!("(and the static cluster never came back at all).");
}
