//! Protocol shootout: the same failure, four routing strategies, one
//! table — the paper's proactive-vs-reactive argument as a runnable demo.
//!
//! Run: `cargo run --release --example protocol_shootout`

use drs::baselines::compare::{run_protocol, ProtocolConfigs, ProtocolLabel, ScenarioSpec};
use drs::sim::fault::SimComponent;
use drs::sim::{NetId, NodeId};

fn main() {
    println!("one failure, four routing strategies");
    println!("(10 hosts; host 1 loses its primary NIC; 40 probe messages at 4/s)");
    println!();

    let n = 10;
    let spec = ScenarioSpec::standard(n, 99, vec![SimComponent::Nic(NodeId(1), NetId::A)]);

    // One config bundle, one dispatch call per protocol — the same
    // data-driven path the benchmark shootout takes.
    let cfgs = ProtocolConfigs::bench_defaults();
    let results: Vec<_> = ProtocolLabel::ALL
        .iter()
        .map(|&label| run_protocol(label, &spec, &cfgs))
        .collect();

    println!(
        "{:<22} {:>10} {:>12} {:>8} {:>12}",
        "protocol", "delivered", "retransmits", "lost", "outage"
    );
    for r in &results {
        println!(
            "{:<22} {:>7}/{:<3} {:>12} {:>8} {:>12}",
            r.label.to_string(),
            r.delivered,
            r.sent,
            r.retransmits,
            r.gave_up,
            r.outage.map_or("never".to_string(), |d| d.to_string()),
        );
    }

    println!();
    let by = |l: ProtocolLabel| results.iter().find(|r| r.label == l).unwrap();
    let drs_outage = by(ProtocolLabel::Drs).outage.expect("DRS stabilizes");
    let rip_outage = by(ProtocolLabel::Rip).outage.expect("RIP stabilizes");
    println!(
        "DRS restored prompt service {:.0}x faster than the RIP-style baseline",
        rip_outage.as_secs_f64() / drs_outage.as_secs_f64().max(1e-9)
    );
    println!("(and the static cluster never came back at all).");
}
