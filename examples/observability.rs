//! Observability tour: watch DRS failover happen through the unified
//! metrics layer instead of print statements.
//!
//! Run: `cargo run --release --example observability`
//!
//! A DRS cluster loses its primary hub mid-run. Every host's probe-path
//! histograms (probe gap, probe RTT, failure-detection latency, reroute
//! latency) accumulate in sim-time as it happens; afterwards we merge
//! them — merge order never changes a single bucket — and read the story
//! off the percentiles. Probe bytes on the wire are checked against the
//! Figure 1 bandwidth budget, and a [`drs::obs::Span`] wraps the run in
//! sim-time, so everything printed here is exactly reproducible.

use drs::core::{DrsConfig, DrsDaemon};
use drs::cost::ProbeCostModel;
use drs::obs::{MetricsRegistry, Span};
use drs::sim::fault::{FaultPlan, SimComponent};
use drs::sim::stats::LatencyHistogram;
use drs::sim::{ClusterSpec, NetId, SimDuration, SimTime, World};

fn print_hist(name: &str, h: &LatencyHistogram) {
    // The "no samples ≠ 0 ns" rule: empty histograms print a dash.
    let fmt = |d: Option<SimDuration>| d.map_or_else(|| "—".to_string(), |d| d.to_string());
    println!(
        "  {name:<18} {:>6} samples  p50 ≤ {:>10}  p99 ≤ {:>10}  max {:>10}",
        h.count(),
        fmt(h.quantile_upper_bound(0.5)),
        fmt(h.quantile_upper_bound(0.99)),
        fmt(h.max()),
    );
}

fn main() {
    let n = 8;
    let cfg = DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(100))
        .probe_interval(SimDuration::from_millis(500));
    let mut world = World::new(ClusterSpec::new(n).seed(7), |id| DrsDaemon::new(id, n, cfg));

    // A sim-time span over the whole incident: begin at t0, read at the end.
    let run_span = Span::begin(world.now().0);

    // Two quiet seconds, then the primary hub dies, then recovery.
    world.run_for(SimDuration::from_secs(2));
    world.schedule_faults(FaultPlan::new().fail_at(world.now(), SimComponent::Hub(NetId::A)));
    world.run_for(SimDuration::from_secs(4));

    println!("probe-path histograms, merged over all {n} hosts:");
    let obs = world.merged_probe_obs();
    print_hist("probe_gap", &obs.probe_gap);
    print_hist("probe_rtt", &obs.probe_rtt);
    print_hist("failover_detect", &obs.failover_detect);
    print_hist("reroute_complete", &obs.reroute_complete);

    // Probe overhead against the paper's Figure 1 budget model.
    let model = ProbeCostModel::default();
    let elapsed = SimTime(run_span.elapsed_ns(world.now().0));
    let budget_bytes = 0.15 * model.bandwidth_bps as f64 * elapsed.0 as f64 / 1e9 / 8.0;
    println!(
        "\nprobe traffic: {} bytes originated in {elapsed} (15% budget: {budget_bytes:.0} bytes)",
        obs.probe_bytes
    );
    assert!((obs.probe_bytes as f64) < budget_bytes, "within budget");

    // The same numbers flow into a MetricsRegistry — the mergeable,
    // deterministic store the bench artifacts are built from.
    let mut reg = MetricsRegistry::new();
    reg.inc("probe_bytes", obs.probe_bytes);
    for d in [NetId::A, NetId::B] {
        reg.inc("wire_probe_bytes", world.medium(d).stats.probe_bytes);
    }
    if let Some(d) = obs.failover_detect.max() {
        reg.record("failover_detect_ns", d.0);
    }
    println!("\nregistry counters:");
    for (name, v) in reg.counters() {
        println!("  {name:<18} {v}");
    }

    let detect = obs.failover_detect.max().expect("hub failure was detected");
    println!("\nhub failure detected within {detect} — DRS saw everything, in sim-time.");
}
