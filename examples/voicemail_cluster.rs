//! The commercial deployment scenario: a voice-mail server cluster under
//! a year's worth of hardware trouble, compressed.
//!
//! Run: `cargo run --release --example voicemail_cluster`
//!
//! The paper's DRS ran in 27 MCI WorldCom voice-mail clusters of 8–12
//! servers. This example models one such cluster: ten servers exchanging
//! steady request/response traffic (message deposit/retrieval between
//! front-ends and storage nodes) while a Poisson failure/repair process
//! knocks NICs and hubs out and field service brings them back. We
//! compare what the application experienced against the raw component
//! failure count.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use drs::core::{DrsConfig, DrsDaemon};
use drs::sim::app::Workload;
use drs::sim::fault::FaultPlan;
use drs::sim::{ClusterSpec, NodeId, SimDuration, SimTime, World};

fn main() {
    let n = 10;
    let seed = 1999;
    let spec = ClusterSpec::new(n).seed(seed);
    let cfg = DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(100))
        .probe_interval(SimDuration::from_millis(500));
    let mut world = World::new(spec, |id| DrsDaemon::new(id, n, cfg));

    // A compressed "service year": 10 minutes of simulated time with a
    // failure roughly every 40 seconds, repaired after 15 s (stand-ins
    // for MTBF-months and MTTR-hours).
    let horizon = SimDuration::from_secs(600);
    let mut rng = SmallRng::seed_from_u64(seed);
    let plan = FaultPlan::poisson_process(
        horizon,
        SimDuration::from_secs(40),
        SimDuration::from_secs(15),
        n,
        2,
        &mut rng,
    );
    let injected = plan.len() / 2; // fail+repair pairs
    world.schedule_faults(plan);

    // Voice-mail traffic: every server exchanges messages with every
    // other twice a second (deposit + waiting-message checks).
    let wl = Workload::all_to_all(
        n,
        SimTime(500_000_000),
        SimDuration::from_millis(500),
        (horizon.as_nanos() / 500_000_000) as usize - 2,
        736, // one G.711 voice frame bundle
    );
    println!(
        "one voice-mail cluster: {n} servers, {} component faults injected, {} app messages",
        injected,
        wl.len()
    );
    world.schedule_workload(&wl);
    world.run_for(horizon + SimDuration::from_secs(200));

    let stats = world.app_stats();
    println!();
    println!("application view after the compressed service year:");
    println!(
        "  delivered: {} / {} ({:.3}%)",
        stats.delivered,
        stats.sent,
        stats.delivery_ratio() * 100.0
    );
    println!("  retransmissions: {}", stats.retransmits);
    println!("  abandoned messages: {}", stats.gave_up);
    if let (Some(mean), Some(max)) = (stats.latency.mean(), stats.latency.max()) {
        println!("  latency: mean {mean}, worst {max}");
    }

    println!();
    println!("protocol view:");
    let mut detections = 0;
    let mut reroutes = 0;
    let mut gateways = 0;
    for i in 0..n as u32 {
        let m = &world.protocol(NodeId(i)).metrics;
        detections += m.link_down_events;
        reroutes += m.route_changes;
        gateways += m.gateway_failovers;
    }
    println!("  link-down detections across daemons: {detections}");
    println!("  route repairs installed: {reroutes} (of which {gateways} via gateway)");
    println!(
        "  probe traffic on net A: {:.2} MB over the run",
        world.medium(drs::sim::NetId::A).stats.probe_bytes as f64 / 1e6
    );

    assert!(
        stats.delivery_ratio() > 0.999,
        "a DRS cluster should deliver essentially everything: {:.5}",
        stats.delivery_ratio()
    );
    println!();
    println!(
        "{injected} hardware faults; {} messages lost — the cluster survived its year.",
        stats.sent - stats.delivered
    );
}
