//! Quickstart: build a DRS cluster, break it, and watch nothing happen.
//!
//! Run: `cargo run --release --example quickstart`
//!
//! An 8-server cluster with dual networks runs the DRS daemons. We kill
//! the primary hub mid-run; DRS detects the failure through its probe
//! stream and moves every route to the redundant network before the
//! application's next message — which is the entire point of the
//! protocol.

use drs::core::{DrsConfig, DrsDaemon};
use drs::sim::fault::{FaultPlan, SimComponent};
use drs::sim::{ClusterSpec, NetId, NodeId, SimDuration, SimTime, World};

fn main() {
    // An 8-host cluster: two 100 Mb/s shared networks, two NICs per host.
    let n = 8;
    let spec = ClusterSpec::new(n).seed(7);

    // DRS tuned for half-second sweeps (the deployed systems used ~1 s).
    let cfg = DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(100))
        .probe_interval(SimDuration::from_millis(500));

    let mut world = World::new(spec, |id| DrsDaemon::new(id, n, cfg));
    println!(
        "started {n} hosts running DRS (probe sweep {})",
        cfg.probe_interval
    );

    // Normal traffic for two seconds.
    for i in 1..n as u32 {
        world.send_app(SimTime(1_000_000_000), NodeId(0), NodeId(i), 512);
    }
    world.run_for(SimDuration::from_secs(2));
    println!(
        "t={}: {} messages delivered, {} retransmits",
        world.now(),
        world.app_stats().delivered,
        world.app_stats().retransmits
    );

    // Disaster: the primary hub dies.
    let t_fault = world.now();
    world.schedule_faults(FaultPlan::new().fail_at(t_fault, SimComponent::Hub(NetId::A)));
    println!("t={t_fault}: primary hub (network A) FAILED");

    // Give DRS a couple of probe sweeps to notice and repair.
    world.run_for(SimDuration::from_secs(2));
    let d = world.protocol(NodeId(0));
    println!(
        "t={}: daemon n0 saw {} link-down events, made {} route changes",
        world.now(),
        d.metrics.link_down_events,
        d.metrics.route_changes
    );
    for (dst, route) in world.host(NodeId(0)).routes.iter().take(3) {
        println!("  n0 route to {dst}: {route:?}");
    }

    // Post-failure traffic: the application is none the wiser.
    let before = world.app_stats().retransmits;
    for i in 1..n as u32 {
        world.send_app(world.now(), NodeId(0), NodeId(i), 512);
    }
    world.run_for(SimDuration::from_secs(3));
    let stats = world.app_stats();
    println!(
        "t={}: {} of {} messages delivered, {} new retransmits",
        world.now(),
        stats.delivered,
        stats.sent,
        stats.retransmits - before
    );
    assert_eq!(stats.delivered, stats.sent, "no message lost");
    assert_eq!(
        stats.retransmits, before,
        "application never noticed the failure"
    );
    println!("the hub failure was invisible to the application — DRS working as published.");
}
