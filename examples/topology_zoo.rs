//! The topology graph layer, end to end: build a datacenter fabric as an
//! explicit graph, price its hardware, count its exact survivability two
//! ways, and run a packet-level world on it — the API tour behind
//! `BENCH_topology.json`.
//!
//! Run: `cargo run --release --example topology_zoo`

use drs::analytic::topo::enumerate_pair_success_topo;
use drs::cost::equipment::{cost_units, EquipmentCount};
use drs::sim::ids::{NetId, NodeId};
use drs::sim::time::{SimDuration, SimTime};
use drs::sim::world::{Ctx, Protocol, World};
use drs::sim::TopologySpec;
use drs::topology::{generators, pair_connected, ComponentSet, Reachability};

/// A one-shot flood: the origin broadcasts a token on every live NIC,
/// every node rebroadcasts once — the DES analogue of reachability.
struct Flood {
    seen: bool,
}

impl Flood {
    fn out(ctx: &mut Ctx<'_, u8>) {
        for s in 0..ctx.planes() {
            if ctx.nic_is_up(NetId(s)) {
                ctx.broadcast_control(NetId(s), 1);
            }
        }
    }
}

impl Protocol for Flood {
    type Msg = u8;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
        if ctx.self_id() == NodeId(0) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u8>, _: u64) {
        self.seen = true;
        Self::out(ctx);
    }
    fn on_control(&mut self, ctx: &mut Ctx<'_, u8>, _: NodeId, _: NetId, _: &u8) {
        if !self.seen {
            self.seen = true;
            Self::out(ctx);
        }
    }
}

fn main() {
    println!("the topology zoo: one graph layer, four fabrics");
    println!();

    // 1. Every fabric is an explicit graph with a deterministic
    //    component universe: switches first, then links.
    for topo in [
        generators::kplane(16, 2),
        generators::kplane(16, 3),
        generators::fat_tree(4),
        generators::bcube(4, 1),
        generators::dcell(4, 1),
    ] {
        let eq = EquipmentCount::of(&topo);
        println!(
            "  {topo}  ->  {} components, {} cost units ({} switch ports, {} NIC ports)",
            topo.component_count(),
            cost_units(&topo),
            eq.switch_ports,
            eq.nic_ports,
        );
    }

    // 2. Exact survivability over the full component universe, under the
    //    reachability policy that matches the routing model: union-find
    //    transitive connectivity for switched fabrics, the DRS one-hop
    //    gateway rule for the K-plane cluster.
    let topo = generators::dcell(4, 1);
    let (src, dst) = (0, topo.hosts() - 1);
    println!();
    println!("P[{src} reaches {dst} | f failed components] on {topo}:");
    for f in 1..=4 {
        let (s, t) = enumerate_pair_success_topo(&topo, f, src, dst, Reachability::Transitive);
        println!("  f={f}: {s}/{t} = {:.4}", s as f64 / t as f64);
    }

    // 3. Single failure sets answer "what breaks us": DCell(4,1) rides
    //    out any one switch because every host has a cross link.
    let one_switch = ComponentSet::from_indices(&[0]);
    assert!(pair_connected(
        &topo,
        &one_switch,
        src,
        dst,
        Reachability::Transitive
    ));
    println!("  losing one mini-switch never partitions DCell(4,1)");

    // 4. The same graph drives the packet-level simulator: one shared
    //    segment per link, NIC membership masks, switch/link faults.
    let tspec = TopologySpec::new(topo.clone()).seed(7);
    let mut world = World::from_topology(&tspec, |_| Flood { seen: false });
    let failed = [0usize]; // the cell-0 mini-switch, as a fault plan
    world.schedule_faults(tspec.fault_plan(SimTime(0), &failed));
    world.run_for(SimDuration::from_secs(1));
    let reached = (0..topo.hosts())
        .filter(|&h| world.protocol(NodeId(h as u32)).seen)
        .count();
    println!();
    println!(
        "packet-level flood on the same graph, switch 0 down: {reached}/{} hosts reached",
        topo.hosts()
    );
    let set = ComponentSet::from_indices(&failed);
    for h in 1..topo.hosts() {
        assert_eq!(
            world.protocol(NodeId(h as u32)).seen,
            pair_connected(&topo, &set, 0, h, Reachability::Transitive),
            "host {h}: DES and union-find disagree"
        );
    }
    println!("every host matches the union-find predicate, host for host");
}
