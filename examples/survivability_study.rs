//! The survivability mathematics, end to end: Equation 1, its exhaustive
//! validation, the Monte-Carlo simulation, and the sizing question a
//! deployer actually asks.
//!
//! Run: `cargo run --release --example survivability_study`

use drs::analytic::enumerate::exhaustive_p_success;
use drs::analytic::exact::p_success;
use drs::analytic::montecarlo::MonteCarlo;
use drs::analytic::qmodel::{unconditional_survivability, FailureWeighting};
use drs::analytic::thresholds::first_n_exceeding;
use drs::cost::planner::{plan_cluster, PlanningRequirement};
use drs::cost::ProbeCostModel;
use drs::sim::SimDuration;

fn main() {
    println!("How many servers does a DRS cluster need to ride out f failures?");
    println!();

    // The deployer's question: I want 99% pair survivability even with f
    // simultaneous component failures. How big must the cluster be?
    for f in 2..=6 {
        let n = first_n_exceeding(f, 0.99).expect("always crosses");
        println!("  f={f}: N >= {n:>3}  (P[S] there: {:.4})", p_success(n, f));
    }
    println!("  (paper milestones: 18 / 32 / 45 for f = 2 / 3 / 4)");

    // Three independent routes to the same number, for one cell.
    let (n, f) = (8u64, 3u64);
    println!();
    println!("three independent computations of P[S](N={n}, f={f}):");
    let exact = p_success(n, f);
    println!("  Equation 1 (closed form):       {exact:.6}");
    let brute = exhaustive_p_success(n as usize, f as usize);
    println!("  exhaustive enumeration:         {brute:.6}");
    let mc = MonteCarlo::new(n as usize, f as usize, 42).estimate_parallel(2_000_000);
    println!(
        "  Monte Carlo (2M draws):         {:.6} ± {:.6}",
        mc.p_hat, mc.std_error
    );
    assert!((exact - brute).abs() < 1e-12);
    assert!((exact - mc.p_hat).abs() < 5.0 * mc.std_error.max(1e-6));

    // From conditional to unconditional: fold in how likely f failures
    // are in the first place.
    println!();
    println!("unconditional pair survivability (component failure prob q, binomial):");
    for &q in &[0.01, 0.05, 0.10] {
        let s4 = unconditional_survivability(4, q, FailureWeighting::Binomial);
        let s16 = unconditional_survivability(16, q, FailureWeighting::Binomial);
        let s64 = unconditional_survivability(64, q, FailureWeighting::Binomial);
        println!("  q={q:.2}: N=4 -> {s4:.6}   N=16 -> {s16:.6}   N=64 -> {s64:.6}");
    }
    // Finally, the full planning question: resilience AND monitoring cost.
    println!();
    println!("deployment plan: survive f=2 at 0.99, detect within 1 s, 10% bandwidth:");
    let plan = plan_cluster(
        &ProbeCostModel::default(),
        &PlanningRequirement {
            resilience_f: 2,
            survivability_target: 0.99,
            detection_target: SimDuration::from_secs(1),
            bandwidth_budget: 0.10,
        },
    );
    println!(
        "  feasible sizes: {}..={} -> build {} hosts, sweep every {}",
        plan.min_nodes,
        plan.max_nodes,
        plan.recommended_nodes.unwrap(),
        plan.probe_interval.unwrap(),
    );

    println!();
    println!("two readings of 'P[S] -> 1 as N grows':");
    println!("  * conditional on f failures (the paper's Figure 2): growth genuinely");
    println!("    helps — f failures get lost among 2N+2 components;");
    println!("  * with independent per-component failures, growth helps only by");
    println!("    supplying gateway candidates, and saturates within a few nodes —");
    println!("    the residual risk is the pair's own NICs and the two hubs.");
    println!("both views agree the dual-network design is what buys the nines.");
}
