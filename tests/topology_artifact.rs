//! Integration: the committed `BENCH_topology.json` artifact is exactly
//! what the topology-zoo sweep regenerates — same bytes — and it carries
//! the tentpole claims: every DES trial agreed with the reachability
//! predicate on every fabric, and the survivability-vs-cost frontier has
//! the shape the graph layer predicts.
//!
//! If an intentional change shifts the cells, regenerate the artifact
//! (`cargo run --release -p drs-bench --bin topology_zoo`) and commit it
//! alongside the change; CI runs the same regenerate-and-diff check.

use drs_bench::topology_zoo::{bench_artifact, Method, SCHEMA, ZOO_FAILURES};
use drs_bench::{BENCH_SEED, TOPOLOGY_BENCH_JSON};
use drs_harness::RunMode;

fn committed() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(TOPOLOGY_BENCH_JSON);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read committed artifact {}: {e}", path.display()))
}

#[test]
fn committed_artifact_regenerates_byte_for_byte() {
    assert_eq!(
        bench_artifact(BENCH_SEED, RunMode::Parallel).to_json(),
        committed(),
        "BENCH_topology.json drifted from what the zoo sweep produces \
         under master seed {BENCH_SEED}; regenerate it with \
         `cargo run --release -p drs-bench --bin topology_zoo` if the \
         change is intentional"
    );
}

#[test]
fn serial_and_parallel_runs_are_identical_and_fully_agree() {
    let parallel = bench_artifact(BENCH_SEED, RunMode::Parallel);
    let serial = bench_artifact(BENCH_SEED, RunMode::Serial);
    assert_eq!(parallel.to_json(), serial.to_json());
    for c in &parallel.cells {
        assert_eq!(
            c.agree, c.trials,
            "cell ({}, f={}) has sim/predicate disagreements",
            c.topology, c.f
        );
        assert!(c.p >= 0.0 && c.p <= 1.0, "{}: p out of range", c.topology);
    }
}

#[test]
fn committed_artifact_covers_the_zoo_grid() {
    let json = committed();
    assert!(json.contains(&format!("\"schema\": \"{SCHEMA}\"")));
    for label in [
        "kplane(n=16,k=2)",
        "kplane(n=16,k=3)",
        "fat_tree(k=4)",
        "bcube(n=4,l=1)",
        "dcell(n=4,l=1)",
    ] {
        assert_eq!(
            json.matches(&format!("\"topology\": \"{label}\"")).count(),
            ZOO_FAILURES.len(),
            "{label}: wrong number of committed cells"
        );
    }
    // Exactly one cell (fat_tree, f=4: C(68,4) > 300 000) is sampled;
    // everything else is exhaustively enumerated.
    assert_eq!(json.matches("\"method\": \"monte_carlo\"").count(), 1);
    assert_eq!(json.matches("\"method\": \"exact\"").count(), 19);
}

#[test]
fn frontier_has_the_shape_the_graph_layer_predicts() {
    let artifact = bench_artifact(BENCH_SEED, RunMode::Parallel);
    let k2 = artifact.get("kplane(n=16,k=2)", 2).expect("k2 cell");
    let k3 = artifact.get("kplane(n=16,k=3)", 2).expect("k3 cell");
    let ft = artifact.get("fat_tree(k=4)", 1).expect("fat-tree cell");
    // Buying a third plane buys survivability: K=3 dominates K=2 at
    // every swept f > 1, at higher equipment cost.
    assert!(k3.cost_units > k2.cost_units);
    assert!(k3.p > k2.p, "K=3 should dominate K=2 at f=2");
    // A fat-tree host hangs off a single NIC: even one failed component
    // can sever the pair, so p < 1 already at f = 1 — the single-NIC
    // cliff the K-plane design exists to avoid.
    assert!(ft.p < 1.0, "fat-tree f=1 should sit below the K-plane");
    assert_eq!(
        artifact.get("bcube(n=4,l=1)", 1).expect("bcube cell").p,
        1.0,
        "BCube(4,1) hosts are dual-homed; one failure cannot sever the pair"
    );
}

#[test]
fn monte_carlo_cell_sits_near_its_exact_neighbours() {
    // The sampled fat-tree f=4 estimate must be consistent with the
    // exact f=3 cell: survivability cannot increase with more failures.
    let artifact = bench_artifact(BENCH_SEED, RunMode::Parallel);
    let f3 = artifact.get("fat_tree(k=4)", 3).expect("exact f=3");
    let f4 = artifact.get("fat_tree(k=4)", 4).expect("sampled f=4");
    assert_eq!(f3.method, Method::Exact);
    assert_eq!(f4.method, Method::MonteCarlo);
    assert!(f4.p < f3.p, "P[S] must fall as f grows");
    assert!(f4.p > 0.5, "fat-tree at f=4 is still mostly survivable");
}
