//! Cross-validation of the four independent survivability computations:
//! Equation 1's closed form, exhaustive enumeration, the Monte-Carlo
//! estimator, and the packet-level simulator running real DRS daemons.
//! They share nothing but the component model, so agreement pins each
//! one down.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use drs::analytic::connectivity::pair_connected;
use drs::analytic::enumerate::{enumerate_pair_success, exhaustive_p_success};
use drs::analytic::exact::{component_count, p_success, success_count};
use drs::analytic::montecarlo::{sample_failure_set, MonteCarlo};
use drs::core::{DrsConfig, DrsDaemon};
use drs::sim::fault::{index_to_component, FaultPlan};
use drs::sim::scenario::TransportConfig;
use drs::sim::world::FlowOutcome;
use drs::sim::{ClusterSpec, NodeId, SimDuration, SimTime, World};

#[test]
fn closed_form_equals_enumeration_everywhere_feasible() {
    for n in 2..=8u64 {
        for f in 0..=component_count(n).min(7) {
            let (succ, total) = enumerate_pair_success(n as usize, f as usize);
            assert_eq!(success_count(n, f), succ, "n={n} f={f}");
            let p = succ as f64 / total as f64;
            assert!((p_success(n, f) - p).abs() < 1e-12, "n={n} f={f}");
        }
    }
}

#[test]
fn monte_carlo_converges_to_closed_form() {
    for &(n, f) in &[(10usize, 2usize), (20, 4), (40, 6), (63, 10)] {
        let est = MonteCarlo::new(n, f, 7).estimate_parallel(500_000);
        let exact = p_success(n as u64, f as u64);
        assert!(
            (est.p_hat - exact).abs() < 6.0 * est.std_error.max(5e-5),
            "n={n} f={f}: {} vs {exact} (se {})",
            est.p_hat,
            est.std_error
        );
    }
}

#[test]
fn exhaustive_probability_matches_closed_form_smallest_cases() {
    assert!((exhaustive_p_success(2, 2) - p_success(2, 2)).abs() < 1e-12);
    assert!((exhaustive_p_success(3, 3) - p_success(3, 3)).abs() < 1e-12);
}

/// The decisive check: for random failure scenarios, message delivery on
/// the packet-level simulator (with DRS daemons doing real detection,
/// failover and gateway discovery) must match the combinatorial
/// predicate **trial by trial** — not just in aggregate.
#[test]
fn packet_simulation_agrees_with_predicate_per_trial() {
    let trials = 25u64;
    for &(n, f) in &[(6usize, 2usize), (8, 3), (10, 4)] {
        for t in 0..trials {
            let seed = 0xC05 ^ ((n as u64) << 32) ^ ((f as u64) << 16) ^ t;
            let mut rng = SmallRng::seed_from_u64(seed);
            let failures = sample_failure_set(n, f, &mut rng);
            let predicted = pair_connected(n, &failures, 0, 1);

            let cfg = DrsConfig::default()
                .probe_timeout(SimDuration::from_millis(50))
                .probe_interval(SimDuration::from_millis(200));
            let transport = TransportConfig {
                initial_rto: SimDuration::from_millis(100),
                backoff_factor: 2,
                max_retries: 6,
            };
            let spec = ClusterSpec::new(n).seed(seed).transport(transport);
            let mut world = World::new(spec, |id| DrsDaemon::new(id, n, cfg));
            let mut plan = FaultPlan::new();
            for idx in failures.iter() {
                plan = plan.fail_at(SimTime(1_000_000_000), index_to_component(idx, n, 2));
            }
            world.schedule_faults(plan);
            world.run_for(SimDuration::from_secs(6));
            let flow = world.send_app(world.now(), NodeId(0), NodeId(1), 256);
            world.run_for(SimDuration::from_secs(20));
            let delivered = matches!(world.flow_outcome(flow), Some(FlowOutcome::Delivered(_)));
            assert_eq!(
                delivered,
                predicted,
                "n={n} f={f} trial={t}: failures {:?}",
                failures.iter().collect::<Vec<_>>()
            );
        }
    }
}

/// The component index layouts of `drs-analytic`, `drs-sim` and the
/// `drs-topology` graph layer are three implementations of the same
/// convention; they must never drift — including at the out-of-range
/// boundary, where all three must refuse rather than wrap.
#[test]
fn topology_component_layout_locks_all_three_layers() {
    use drs::analytic::components::Component;
    use drs::sim::fault::{try_index_to_component, SimComponent};
    use drs::topology::{generators, TopoComponent};
    for (n, planes) in [(9usize, 2u8), (5, 3), (4, 4)] {
        let k = planes as usize;
        let topo = generators::kplane(n, k);
        let m = k * n + k;
        assert_eq!(topo.component_count(), m, "n={n} K={k}");
        for idx in 0..m {
            let g = topo.component(idx).expect("in range");
            let a = Component::try_from_index_k(idx, n, planes).expect("in range");
            let s = try_index_to_component(idx, n, planes).expect("in range");
            match (g, a, s) {
                (
                    TopoComponent::Switch(sw),
                    Component::Backplane(net),
                    SimComponent::Hub(hub),
                ) => {
                    assert_eq!(sw, net as usize, "idx {idx}");
                    assert_eq!(sw, hub.idx(), "idx {idx}");
                }
                (
                    TopoComponent::Link(l),
                    Component::Nic { node, net },
                    SimComponent::Nic(snode, snet),
                ) => {
                    assert_eq!(node, snode.0, "idx {idx}");
                    assert_eq!(net as usize, snet.idx(), "idx {idx}");
                    // The graph link is that host's attachment to that
                    // plane's switch node.
                    let link = topo.links()[l];
                    assert_eq!(link.a, node, "idx {idx}: host endpoint");
                    assert_eq!(
                        link.b as usize,
                        n + snet.idx(),
                        "idx {idx}: switch endpoint"
                    );
                }
                other => panic!("layout drift at idx {idx}: {other:?}"),
            }
        }
        // Boundary: one past the universe is None in every layer.
        assert_eq!(topo.component(m), None, "n={n} K={k}");
        assert!(Component::try_from_index_k(m, n, planes).is_none());
        assert!(try_index_to_component(m, n, planes).is_none());
    }
}

/// The component index layouts of `drs-analytic` and `drs-sim` are two
/// implementations of the same convention; they must never drift.
#[test]
fn component_index_conventions_agree() {
    use drs::analytic::components::Component;
    use drs::sim::fault::SimComponent;
    use drs::sim::NetId;
    let n = 9;
    for idx in 0..2 * n + 2 {
        let a = Component::from_index(idx, n);
        let s = index_to_component(idx, n, 2);
        match (a, s) {
            (Component::Backplane(an), SimComponent::Hub(sn)) => {
                assert_eq!(an as usize, sn.idx(), "idx {idx}");
            }
            (Component::Nic { node, net }, SimComponent::Nic(snode, snet)) => {
                assert_eq!(node, snode.0, "idx {idx}");
                assert_eq!(net as usize, snet.idx(), "idx {idx}");
            }
            other => panic!("layout drift at idx {idx}: {other:?}"),
        }
        let _ = NetId::A;
    }
}
