//! Integration: the committed `BENCH_sim_survivability.json` artifact is
//! exactly what the harness regenerates — same bytes, serial or parallel.
//!
//! If an intentional change shifts the simulation results, regenerate the
//! artifact (`cargo run --release -p drs-bench --bin sim_sweep`) and
//! commit it alongside the change; this test then documents the new
//! ground truth. CI runs the same regenerate-and-diff check.

use drs::harness::RunMode;
use drs_bench::sim_artifact::bench_artifact;
use drs_bench::{BENCH_SEED, SIM_BENCH_JSON};

fn committed() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(SIM_BENCH_JSON);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read committed artifact {}: {e}", path.display()))
}

#[test]
fn committed_artifact_regenerates_byte_for_byte() {
    let regenerated = bench_artifact(RunMode::Parallel).to_json();
    assert_eq!(
        regenerated,
        committed(),
        "BENCH_sim_survivability.json drifted from what the harness \
         produces under master seed {BENCH_SEED}; regenerate it with \
         `cargo run --release -p drs-bench --bin sim_sweep` if the \
         change is intentional"
    );
}

#[test]
fn serial_and_parallel_artifacts_are_byte_identical() {
    let parallel = bench_artifact(RunMode::Parallel);
    let serial = bench_artifact(RunMode::Serial);
    assert_eq!(parallel.to_json(), serial.to_json());
}

#[test]
fn artifact_traces_tell_a_complete_story() {
    // Every shootout trial accounts for each sent flow with a terminal
    // event, and every e2e trial records its fault injections.
    let artifact = bench_artifact(RunMode::Parallel);
    let shootout = artifact.get("protocol-shootout").expect("shootout runs");
    for t in &shootout.trials {
        let sent = t
            .metrics
            .iter()
            .find(|m| m.name == "sent")
            .and_then(|m| match m.value {
                drs::harness::MetricValue::Count(c) => Some(c),
                _ => None,
            })
            .expect("sent metric");
        let terminal = t
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    drs::harness::TraceEventKind::FlowDelivered
                        | drs::harness::TraceEventKind::FlowGaveUp
                )
            })
            .count() as u64;
        assert_eq!(
            terminal, sent,
            "{}: every flow ends in a terminal event",
            t.id
        );
    }
    let e2e_experiments: Vec<_> = artifact
        .experiments
        .iter()
        .filter(|e| e.name.starts_with("e2e/"))
        .collect();
    assert!(!e2e_experiments.is_empty(), "e2e grid present");
    for exp in e2e_experiments {
        for t in &exp.trials {
            let faults = t
                .events
                .iter()
                .filter(|e| e.kind == drs::harness::TraceEventKind::FaultInjected)
                .count();
            assert!(faults > 0, "{}/{}: fault trace recorded", exp.name, t.id);
        }
    }
}
