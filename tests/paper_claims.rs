//! The paper's headline claims, one test each — the abstract rendered as
//! a test suite. Every assertion here traces to a sentence of the paper
//! (quoted in the test).

use drs::analytic::exact::p_success;
use drs::analytic::thresholds::first_n_exceeding;
use drs::core::{DrsConfig, DrsDaemon};
use drs::cost::model::ProbeCostModel;
use drs::sim::fault::{FaultPlan, SimComponent};
use drs::sim::{ClusterSpec, NetId, NodeId, SimDuration, SimTime, World};
use drs::trace::fleet::FleetSpec;
use drs::trace::study::replicate_study;

/// "for f=2 the P[S] surpasses 0.99 at 18 nodes. For f=3 the P[S]
/// surpasses 0.99 at 32 nodes, and for f=4 the P[S] surpasses 0.99 at 45
/// nodes."
#[test]
fn claim_milestones() {
    assert_eq!(first_n_exceeding(2, 0.99), Some(18));
    assert_eq!(first_n_exceeding(3, 0.99), Some(32));
    assert_eq!(first_n_exceeding(4, 0.99), Some(45));
}

/// "the probability of success for server-to-server communication
/// converges to 1 as N grows for a fixed number of failures."
#[test]
fn claim_convergence_to_one() {
    for f in 2..=10 {
        let p64 = p_success(64, f);
        let p256 = p_success(256, f);
        let p500 = p_success(500, f);
        assert!(p64 < p256 && p256 < p500, "f={f}");
        assert!(p500 > 0.998, "f={f}: {p500}");
    }
}

/// "ninety hosts are supported in less than 1 second with only 10% of
/// the bandwidth usage" (Figure 1's anchor).
#[test]
fn claim_ninety_hosts() {
    let model = ProbeCostModel::default();
    assert!(model.response_time(90, 0.10) < SimDuration::from_secs(1));
    assert!(model.max_nodes(0.10, SimDuration::from_secs(1)) >= 90);
}

/// "over a one-year period, thirteen percent of the hardware failures
/// for 100 compute servers were network related" (reproduced as the mean
/// of the calibrated synthetic study).
#[test]
fn claim_thirteen_percent_network_failures() {
    let spec = FleetSpec::hundred_servers_one_year();
    let s = replicate_study(&spec, 300, 13);
    assert!(
        (s.mean_network_fraction - 0.13).abs() < 0.02,
        "mean network fraction {:.4}",
        s.mean_network_fraction
    );
}

/// "This new route is often found in the time of a TCP retransmit, so
/// server applications are unaware that a network failure has occurred."
#[test]
fn claim_repair_within_a_tcp_retransmit() {
    let n = 8;
    // Deployed-style tuning: 1 s sweeps would give ~2 s detection; use
    // 250 ms sweeps so the repair lands within the 1 s initial RTO.
    let cfg = DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(50))
        .probe_interval(SimDuration::from_millis(250));
    let spec = ClusterSpec::new(n).seed(21);
    let mut w = World::new(spec, |id| DrsDaemon::new(id, n, cfg));
    w.run_for(SimDuration::from_secs(2));

    // Failure strikes while a message is already in flight.
    let t0 = w.now();
    w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Hub(NetId::A)));
    let flow = w.send_app(t0 + SimDuration::from_millis(1), NodeId(0), NodeId(5), 512);
    w.run_for(SimDuration::from_secs(10));

    match w.flow_outcome(flow) {
        Some(drs::sim::world::FlowOutcome::Delivered(rtt)) => {
            // The in-flight message needs exactly one TCP retransmit: DRS
            // repaired the route inside the first RTO.
            assert!(
                rtt < SimDuration::from_millis(1100),
                "one RTO at most, got {rtt}"
            );
        }
        other => panic!("message lost: {other:?}"),
    }
    // Everything sent after convergence is untouched.
    let before = w.app_stats().retransmits;
    w.send_app(w.now(), NodeId(0), NodeId(5), 512);
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(w.app_stats().retransmits, before);
}

/// "each cluster contains between 8 and 12 servers" — DRS must behave at
/// every deployed size.
#[test]
fn claim_deployed_cluster_sizes() {
    for n in 8..=12 {
        let cfg = DrsConfig::default()
            .probe_timeout(SimDuration::from_millis(50))
            .probe_interval(SimDuration::from_millis(250));
        let spec = ClusterSpec::new(n).seed(n as u64);
        let mut w = World::new(spec, |id| DrsDaemon::new(id, n, cfg));
        w.schedule_faults(FaultPlan::new().fail_at(
            SimTime(1_000_000_000),
            SimComponent::Nic(NodeId(1), NetId::A),
        ));
        w.run_for(SimDuration::from_secs(4));
        for i in (0..n as u32).filter(|&i| i != 1) {
            assert_eq!(
                w.host(NodeId(i)).routes.get(NodeId(1)),
                Some(drs::sim::Route::Direct(NetId::B)),
                "n={n}, host {i}"
            );
        }
    }
}

/// "The DRS algorithm avoids routing loops": even under adversarial
/// simultaneous failures, forwarded traffic never cycles (no TTL drops).
#[test]
fn claim_no_routing_loops() {
    for seed in 0..10u64 {
        let n = 10;
        let cfg = DrsConfig::default()
            .probe_timeout(SimDuration::from_millis(50))
            .probe_interval(SimDuration::from_millis(200));
        let spec = ClusterSpec::new(n).seed(seed);
        let mut w = World::new(spec, |id| DrsDaemon::new(id, n, cfg));
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        let (plan, _) = FaultPlan::random_simultaneous(SimTime(1_000_000_000), n, 2, 4, &mut rng);
        w.schedule_faults(plan);
        w.run_for(SimDuration::from_secs(5));
        // All-to-all traffic across the damaged cluster.
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s != d {
                    w.send_app(w.now(), NodeId(s), NodeId(d), 64);
                }
            }
        }
        w.run_for(SimDuration::from_secs(200));
        let ttl_drops: u64 = (0..n as u32)
            .map(|i| w.host(NodeId(i)).counters.dropped_ttl)
            .sum();
        assert_eq!(ttl_drops, 0, "seed {seed}: forwarding cycled");
    }
}
