//! Integration: the committed `BENCH_workload.json` artifact is exactly
//! what the fluid-workload benchmark regenerates — same bytes at any
//! `DRS_SIM_THREADS` — and the claims it pins hold structurally: the
//! kernel paid exactly one event per session transition, the byte
//! ledger balanced, and the million-session cell stayed inside its
//! fixed event budget.
//!
//! If an intentional change shifts the results, regenerate the artifact
//! (`cargo run --release -p drs-bench --bin workload_report`) and
//! commit it alongside the change; this test then documents the new
//! ground truth. CI runs the same regenerate-and-diff check at 1 and 4
//! worker threads.

use drs::obs::{FieldValue, Row};
use drs_bench::workload::{million_verdict, workload_bench_artifact, WORKLOAD_SCHEMA};
use drs_bench::{BENCH_SEED, WORKLOAD_BENCH_JSON};

fn committed() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(WORKLOAD_BENCH_JSON);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read committed artifact {}: {e}", path.display()))
}

fn count_field(row: &Row, name: &str) -> Option<u64> {
    row.fields
        .iter()
        .find(|f| f.name == name)
        .and_then(|f| match f.value {
            FieldValue::Count(c) => Some(c),
            _ => None,
        })
}

#[test]
fn committed_artifact_regenerates_byte_for_byte() {
    let regenerated = workload_bench_artifact().to_json_with_schema(WORKLOAD_SCHEMA);
    assert_eq!(
        regenerated,
        committed(),
        "BENCH_workload.json drifted from what the fluid-workload \
         benchmark produces under master seed {BENCH_SEED}; regenerate \
         it with `cargo run --release -p drs-bench --bin \
         workload_report` if the change is intentional"
    );
}

#[test]
fn every_stats_row_pays_one_event_per_transition() {
    let artifact = workload_bench_artifact();
    for section in ["slo", "million"] {
        let sec = artifact.get(section).expect(section);
        for row in &sec.rows {
            // Histogram rows carry no counters; only check stats rows.
            let Some(events) = count_field(row, "kernel_session_events") else {
                continue;
            };
            assert_eq!(
                Some(events),
                count_field(row, "transitions"),
                "{section}/{}: kernel events != engine transitions",
                row.id
            );
            assert_eq!(
                count_field(row, "events_equal_transitions"),
                Some(1),
                "{section}/{}",
                row.id
            );
            assert_eq!(
                count_field(row, "conserved"),
                Some(1),
                "{section}/{}: offered != delivered + shortfall + \
                 dropped + in_flight",
                row.id
            );
        }
    }
}

#[test]
fn scaling_ladder_leaves_event_count_invariant() {
    let artifact = workload_bench_artifact();
    let sec = artifact.get("scaling").expect("scaling section");
    assert!(sec.rows.len() >= 3, "need the x1/x16/x256 ladder");
    for row in &sec.rows {
        assert_eq!(
            count_field(row, "events_equal_base"),
            Some(1),
            "{}: multiplying per-session rate changed the event count",
            row.id
        );
        assert_eq!(count_field(row, "conserved"), Some(1), "{}", row.id);
    }
}

#[test]
fn million_cell_holds_inside_its_event_budget() {
    let artifact = workload_bench_artifact();
    let sec = artifact.get("million").expect("million section");
    let row = sec.rows.first().expect("million row");
    assert!(count_field(row, "active").expect("active") >= 1_000_000);
    assert_eq!(count_field(row, "within_budget"), Some(1));
    let v = million_verdict();
    assert!(v.holds(), "million verdict must hold: {v:?}");
}
