//! Integration: the committed `BENCH_kernel.json` artifact is exactly
//! what the event-kernel benchmark grid regenerates — same bytes — and
//! its queue-traffic section carries the tentpole claim: the batched
//! monitor's timer traffic per cycle is O(N), against the per-pair
//! driver's O(K·N²).
//!
//! If an intentional change shifts the counts, regenerate the artifact
//! (`cargo run --release -p drs-bench --bin kernel_report`) and commit
//! it alongside the change; CI runs the same regenerate-and-diff check.

use drs::obs::{FieldValue, Row};
use drs_bench::kernel::{kernel_artifact, kernel_artifact_json, run_grid, SCALING_THREADS};
use drs_bench::{BENCH_SEED, KERNEL_BENCH_JSON};

fn committed() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(KERNEL_BENCH_JSON);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read committed artifact {}: {e}", path.display()))
}

fn count_field(row: &Row, name: &str) -> Option<u64> {
    row.fields
        .iter()
        .find(|f| f.name == name)
        .and_then(|f| match f.value {
            FieldValue::Count(c) => Some(c),
            _ => None,
        })
}

fn real_field(row: &Row, name: &str) -> Option<f64> {
    row.fields
        .iter()
        .find(|f| f.name == name)
        .and_then(|f| match f.value {
            FieldValue::Real(r) => Some(r),
            _ => None,
        })
}

#[test]
fn committed_artifact_regenerates_byte_for_byte() {
    assert_eq!(
        kernel_artifact_json(),
        committed(),
        "BENCH_kernel.json drifted from what the kernel grid produces \
         under master seed {BENCH_SEED}; regenerate it with \
         `cargo run --release -p drs-bench --bin kernel_report` if the \
         change is intentional"
    );
}

#[test]
fn batched_queue_traffic_is_linear_in_n_across_the_grid() {
    let artifact = kernel_artifact(&run_grid(), &[]);
    let reduction = artifact
        .get("queue_traffic_reduction")
        .expect("reduction section");
    assert!(!reduction.rows.is_empty());
    for row in &reduction.rows {
        let n = count_field(row, "n").expect("n") as f64;
        let k = count_field(row, "planes").expect("planes") as f64;
        let batched = real_field(row, "timer_per_cycle_batched").expect("batched");
        let per_pair = real_field(row, "timer_per_cycle_per_pair").expect("per_pair");
        // Steady state is 2 timer events per daemon per cycle for the
        // batched driver (fan-out + timeout sweep) — independent of K —
        // and 2 per (peer, plane) pair per daemon for the per-pair one.
        assert!(
            batched <= 4.0 * n,
            "{}: batched driver scheduled {batched} timer events/cycle",
            row.id
        );
        assert!(
            per_pair >= k * n * (n - 1.0),
            "{}: per-pair driver scheduled only {per_pair} timer events/cycle",
            row.id
        );
        let factor = real_field(row, "reduction_factor").expect("factor");
        assert!(
            factor >= 0.25 * k * (n - 1.0),
            "{}: reduction factor {factor} is not O(K·N)",
            row.id
        );
    }
}

#[test]
fn committed_artifact_reports_clean_healthy_runs() {
    let json = committed();
    assert!(json.contains("\"schema\": \"drs-bench-kernel/v2\""));
    // Healthy clusters must never clamp a past-time schedule: all twelve
    // wheel_ops rows plus all sixteen thread_scaling rows carry an exact
    // zero.
    assert_eq!(json.matches("\"clamped_past\": 0").count(), 28);
    for row_id in ["n90_k2_per_pair", "n90_k2_batched"] {
        assert!(
            json.contains(&format!("\"id\": \"{row_id}\"")),
            "headline 90-node cell {row_id} missing from the artifact"
        );
    }
}

#[test]
fn committed_thread_scaling_is_thread_count_invariant() {
    // Every (n, k) scaling cell appears once per thread count, and all
    // of a cell's rows carry the same end-state digest — the committed
    // proof that the sharded schedule is deterministic.
    let json = committed();
    for (n, k) in [(256, 2), (256, 4), (1024, 2), (1024, 4)] {
        let mut digests = Vec::new();
        for t in SCALING_THREADS {
            let id = format!("\"id\": \"n{n}_k{k}_t{t}\"");
            let row_start = json.find(&id).unwrap_or_else(|| {
                panic!("scaling cell n{n}_k{k}_t{t} missing from the artifact")
            });
            let row = &json[row_start..json[row_start..].find('}').unwrap() + row_start];
            let tag = "\"state_digest\": ";
            let at = row.find(tag).expect("state_digest field") + tag.len();
            let digest: u64 = row[at..]
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap()
                .parse()
                .expect("digest parses");
            digests.push(digest);
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "n{n}_k{k}: digests differ across thread counts: {digests:?}"
        );
    }
}
