//! Integration: the committed `BENCH_flight.json` artifact is exactly
//! what the causal flight recorder regenerates — same bytes at any
//! `DRS_SIM_THREADS` — and every reconstructed failover chain in it is
//! complete: no orphaned cause refs, no evicted ancestors, and a
//! timestamp-only decomposition that reproduces the daemons'
//! failover-latency histogram samples 100% matched.
//!
//! If an intentional change shifts the results, regenerate the artifact
//! (`cargo run --release -p drs-bench --bin flight_report`) and commit
//! it alongside the change; this test then documents the new ground
//! truth. CI runs the same regenerate-and-diff check at 1 and 4 worker
//! threads.

use drs::obs::{FieldValue, Row};
use drs_bench::flight::{flight_bench_artifact, flight_verdict, FLIGHT_SCHEMA};
use drs_bench::{BENCH_SEED, FLIGHT_BENCH_JSON};

fn committed() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FLIGHT_BENCH_JSON);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read committed artifact {}: {e}", path.display()))
}

fn count_field(row: &Row, name: &str) -> Option<u64> {
    row.fields
        .iter()
        .find(|f| f.name == name)
        .and_then(|f| match f.value {
            FieldValue::Count(c) => Some(c),
            _ => None,
        })
}

#[test]
fn committed_artifact_regenerates_byte_for_byte() {
    let regenerated = flight_bench_artifact().to_json_with_schema(FLIGHT_SCHEMA);
    assert_eq!(
        regenerated,
        committed(),
        "BENCH_flight.json drifted from what the flight recorder \
         produces under master seed {BENCH_SEED}; regenerate it with \
         `cargo run --release -p drs-bench --bin flight_report` if the \
         change is intentional"
    );
}

#[test]
fn every_cell_keeps_complete_causal_chains() {
    let artifact = flight_bench_artifact();
    let cells = artifact.get("flight_cells").expect("flight_cells section");
    assert!(!cells.rows.is_empty());
    for row in &cells.rows {
        assert_eq!(
            count_field(row, "dropped"),
            Some(0),
            "{}: the bounded ring evicted records",
            row.id
        );
    }
    let chains = artifact.get("causal_chains").expect("causal_chains section");
    for row in &chains.rows {
        let failovers = count_field(row, "failovers").expect("failovers");
        assert!(failovers > 0, "{}: fault schedule must fail over", row.id);
        assert_eq!(count_field(row, "orphan_refs"), Some(0), "{}", row.id);
        assert_eq!(count_field(row, "complete"), Some(failovers), "{}", row.id);
        assert_eq!(
            count_field(row, "matched_reroute"),
            Some(failovers),
            "{}: every chain's reroute delta must equal the daemon's \
             recorded sample",
            row.id
        );
    }
}

#[test]
fn decomposition_rows_match_probe_observability() {
    let artifact = flight_bench_artifact();
    let decomp = artifact
        .get("latency_decomposition")
        .expect("latency_decomposition section");
    assert!(!decomp.rows.is_empty());
    for row in &decomp.rows {
        assert_eq!(
            count_field(row, "matches_probe_obs"),
            Some(1),
            "{}: flight-derived histogram != probe-obs histogram",
            row.id
        );
        assert!(count_field(row, "count").expect("count") > 0, "{}", row.id);
    }
}

#[test]
fn verdict_reports_full_match() {
    let v = flight_verdict();
    assert!(
        v.all_matched(),
        "flight verdict must be fully matched: {v:?}"
    );
}
