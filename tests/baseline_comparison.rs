//! Integration: the proactive-vs-reactive ordering holds across failure
//! types and seeds, with every protocol running on identical clusters.

use drs::baselines::compare::{run_scenario, ProtocolLabel, ScenarioSpec};
use drs::baselines::ospf::{OspfConfig, OspfDaemon};
use drs::baselines::reactive::{ReactiveConfig, ReactiveDaemon};
use drs::baselines::rip::{RipConfig, RipDaemon};
use drs::baselines::static_route::StaticRouting;
use drs::core::{DrsConfig, DrsDaemon};
use drs::sim::fault::SimComponent;
use drs::sim::{NetId, NodeId, SimDuration};

fn drs_cfg() -> DrsConfig {
    DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(50))
        .probe_interval(SimDuration::from_millis(250))
}

fn scenarios(n: usize, seed: u64) -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "hub",
            ScenarioSpec::standard(n, seed, vec![SimComponent::Hub(NetId::A)]),
        ),
        (
            "nic",
            ScenarioSpec::standard(n, seed, vec![SimComponent::Nic(NodeId(1), NetId::A)]),
        ),
        (
            "crossed",
            ScenarioSpec::standard(
                n,
                seed,
                vec![
                    SimComponent::Nic(NodeId(0), NetId::B),
                    SimComponent::Nic(NodeId(1), NetId::A),
                ],
            ),
        ),
    ]
}

#[test]
fn ordering_holds_across_failure_types_and_seeds() {
    let n = 8;
    for seed in [11u64, 22, 33] {
        for (name, spec) in scenarios(n, seed) {
            let drs = run_scenario(ProtocolLabel::Drs, &spec, |id| {
                DrsDaemon::new(id, n, drs_cfg())
            });
            let reactive = run_scenario(ProtocolLabel::Reactive, &spec, |id| {
                ReactiveDaemon::new(id, ReactiveConfig::default())
            });
            let ospf = run_scenario(ProtocolLabel::Ospf, &spec, |id| {
                OspfDaemon::new(id, OspfConfig::default().scaled_down(10))
            });
            let rip = run_scenario(ProtocolLabel::Rip, &spec, |id| {
                RipDaemon::new(id, RipConfig::default().scaled_down(10))
            });

            let d = drs
                .outage
                .unwrap_or_else(|| panic!("{name}/{seed}: DRS never stabilized"));
            let re = reactive
                .outage
                .unwrap_or_else(|| panic!("{name}/{seed}: reactive never stabilized"));
            let os = ospf
                .outage
                .unwrap_or_else(|| panic!("{name}/{seed}: OSPF never stabilized"));
            let ri = rip
                .outage
                .unwrap_or_else(|| panic!("{name}/{seed}: RIP never stabilized"));
            assert!(d < re, "{name}/{seed}: DRS {d} !< reactive {re}");
            assert!(re < os, "{name}/{seed}: reactive {re} !< OSPF {os}");
            assert!(os < ri, "{name}/{seed}: OSPF {os} !< RIP {ri}");
            assert_eq!(drs.delivered, drs.sent, "{name}/{seed}: DRS lost messages");
        }
    }
}

#[test]
fn static_routing_loses_everything_on_the_primary_path() {
    let n = 6;
    let spec = ScenarioSpec::standard(n, 5, vec![SimComponent::Hub(NetId::A)]);
    let r = run_scenario(ProtocolLabel::Static, &spec, |_| StaticRouting);
    assert_eq!(r.delivered, 0);
    assert_eq!(r.gave_up, r.sent);
    assert_eq!(r.outage, None);
}

#[test]
fn all_protocols_equivalent_on_a_healthy_cluster() {
    // With no faults, every protocol delivers everything promptly.
    let n = 6;
    let spec = ScenarioSpec::standard(n, 9, vec![]);
    let results = vec![
        run_scenario(ProtocolLabel::Drs, &spec, |id| {
            DrsDaemon::new(id, n, drs_cfg())
        }),
        run_scenario(ProtocolLabel::Reactive, &spec, |id| {
            ReactiveDaemon::new(id, ReactiveConfig::default())
        }),
        run_scenario(ProtocolLabel::Rip, &spec, |id| {
            RipDaemon::new(id, RipConfig::default().scaled_down(10))
        }),
        run_scenario(ProtocolLabel::Static, &spec, |_| StaticRouting),
    ];
    for r in results {
        assert_eq!(r.delivered, r.sent, "{}", r.label);
        assert_eq!(r.gave_up, 0, "{}", r.label);
        assert_eq!(
            r.outage,
            Some(SimDuration::ZERO),
            "{}: healthy cluster has zero outage",
            r.label
        );
    }
}

#[test]
fn rip_outage_scales_with_its_timers() {
    // Compress RIP 10:1 vs 30:1: the outage should shrink ~3x — evidence
    // that RIP's recovery is its timeout, not incidental.
    let n = 6;
    let spec = ScenarioSpec::standard(n, 31, vec![SimComponent::Nic(NodeId(1), NetId::A)]);
    let slow = run_scenario(ProtocolLabel::Rip, &spec, |id| {
        RipDaemon::new(id, RipConfig::default().scaled_down(10))
    });
    let fast = run_scenario(ProtocolLabel::Rip, &spec, |id| {
        RipDaemon::new(id, RipConfig::default().scaled_down(30))
    });
    let (s, f) = (slow.outage.unwrap(), fast.outage.unwrap());
    let ratio = s.as_secs_f64() / f.as_secs_f64();
    assert!(
        (2.0..5.0).contains(&ratio),
        "outage should scale ~3x with timers: {s} vs {f} (ratio {ratio:.2})"
    );
}
