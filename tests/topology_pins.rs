//! Integration: the topology graph layer reproduces the K-plane model
//! count-for-count — against the committed K-plane artifact, against the
//! orbit-counting closed form, and subset-by-subset against the legacy
//! predicate — and the one-hop-gateway policy diverges from transitive
//! reachability exactly where the DRS routing model says it must.

use drs::analytic::components::FailureSet;
use drs::analytic::connectivity::pair_connected_k;
use drs::analytic::orbit::orbit_pair_success;
use drs::analytic::topo::enumerate_pair_success_topo;
use drs::topology::{generators, pair_connected, ComponentSet, Reachability};

/// The nine `(K, n, f)` cells of the committed
/// `BENCH_knet_survivability.json`, with their exact counts. The graph
/// layer's one-hop enumeration over the degenerate K-plane topology must
/// land on every one of them — and the committed artifact must still
/// carry them.
const KNET_CELLS: [(usize, usize, usize, u128, u128); 9] = [
    (2, 5, 2, 59, 66),
    (2, 6, 2, 84, 91),
    (2, 6, 3, 290, 364),
    (3, 5, 2, 153, 153),
    (3, 6, 2, 210, 210),
    (3, 6, 3, 1315, 1330),
    (4, 5, 2, 276, 276),
    (4, 6, 2, 378, 378),
    (4, 6, 3, 3276, 3276),
];

#[test]
fn union_find_layer_reproduces_the_committed_knet_cells() {
    for &(k, n, f, successes, total) in &KNET_CELLS {
        let topo = generators::kplane(n, k);
        assert_eq!(
            enumerate_pair_success_topo(&topo, f, 0, 1, Reachability::OneHostRelay),
            (successes, total),
            "K={k} n={n} f={f}: graph enumeration diverged from the pinned counts"
        );
    }
}

#[test]
fn committed_knet_artifact_still_carries_the_pinned_counts() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("BENCH_knet_survivability.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    for &(k, n, f, successes, total) in &KNET_CELLS {
        let row = format!(
            "\"k\": {k}, \"n\": {n}, \"f\": {f}, \"p_exact\": {}, \
             \"successes\": \"{successes}\", \"total\": \"{total}\"",
            drs::harness::artifact::json_f64(successes as f64 / total as f64),
        );
        assert!(
            json.contains(&row),
            "K={k} n={n} f={f}: committed knet artifact lost its pinned row"
        );
    }
}

#[test]
fn at_k2_all_three_predicates_agree_on_every_subset() {
    // Exhaustive: for small clusters, walk every subset of the 2n+2
    // component universe (all failure sizes at once) and demand the
    // union-find transitive engine, the one-hop graph policy, and the
    // legacy K-plane predicate give the same verdict.
    for n in 2usize..=4 {
        let topo = generators::kplane(n, 2);
        let m = topo.component_count();
        assert_eq!(m, 2 * n + 2);
        for mask in 0u32..(1 << m) {
            let indices: Vec<usize> = (0..m).filter(|&i| mask >> i & 1 == 1).collect();
            let set = ComponentSet::from_indices(&indices);
            let failures = FailureSet::from_indices(&indices);
            let transitive = pair_connected(&topo, &set, 0, 1, Reachability::Transitive);
            let one_hop = pair_connected(&topo, &set, 0, 1, Reachability::OneHostRelay);
            let legacy = pair_connected_k(n, 2, &failures, 0, 1);
            assert_eq!(transitive, one_hop, "n={n} mask={mask:#x}");
            assert_eq!(one_hop, legacy, "n={n} mask={mask:#x}");
        }
    }
}

#[test]
fn one_hop_policy_is_strictly_stronger_beyond_k2() {
    // kplane(4, 3), with NICs cut so host 0 lives only on plane 0,
    // host 1 only on plane 2, host 2 on planes {0, 1} and host 3 on
    // planes {1, 2}: the pair is transitively connected through the
    // two-relay chain 0 → 2 → 3 → 1, but no single relay host shares a
    // plane with both endpoints — exactly the path shape the DRS's
    // one-hop gateway forwarding cannot express.
    let (n, k) = (4usize, 3usize);
    let topo = generators::kplane(n, k);
    let nic = |host: usize, plane: usize| k + plane * n + host;
    let failed = [
        nic(0, 1),
        nic(0, 2),
        nic(1, 0),
        nic(1, 1),
        nic(2, 2),
        nic(3, 0),
    ];
    let set = ComponentSet::from_indices(&failed);
    assert!(pair_connected(&topo, &set, 0, 1, Reachability::Transitive));
    assert!(!pair_connected(&topo, &set, 0, 1, Reachability::OneHostRelay));
    // The legacy K-plane predicate is the one-hop policy.
    let failures = FailureSet::from_indices(&failed);
    assert!(!pair_connected_k(n, k as u8, &failures, 0, 1));
}

#[test]
fn orbit_closed_form_matches_the_graph_enumeration() {
    // The Burnside orbit counter and the union-find walk share nothing
    // but the component model; count-for-count agreement across the
    // K = 2 family pins both.
    for n in 2u64..=8 {
        let topo = generators::kplane(n as usize, 2);
        let m = topo.component_count() as u64;
        for f in 0..=m.min(6) {
            let (os, ot) = orbit_pair_success(n, f).expect("within the shared table");
            assert_eq!(
                enumerate_pair_success_topo(
                    &topo,
                    f as usize,
                    0,
                    1,
                    Reachability::OneHostRelay
                ),
                (os, ot),
                "n={n} f={f}"
            );
        }
    }
}
