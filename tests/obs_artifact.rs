//! Integration: the committed `BENCH_observability.json` artifact is
//! exactly what the instrumented suite regenerates — same bytes, serial
//! or parallel — and its probe-overhead section stays within the
//! Figure 1 bandwidth budget in every cell.
//!
//! If an intentional change shifts the results, regenerate the artifact
//! (`cargo run --release -p drs-bench --bin obs_report`) and commit it
//! alongside the change; this test then documents the new ground truth.
//! CI runs the same regenerate-and-diff check.

use drs::harness::RunMode;
use drs::obs::{FieldValue, Row};
use drs_bench::obs_artifact::obs_bench_artifact;
use drs_bench::{BENCH_SEED, OBS_BENCH_JSON};

fn committed() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(OBS_BENCH_JSON);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read committed artifact {}: {e}", path.display()))
}

fn count_field(row: &Row, name: &str) -> Option<u64> {
    row.fields
        .iter()
        .find(|f| f.name == name)
        .and_then(|f| match f.value {
            FieldValue::Count(c) => Some(c),
            _ => None,
        })
}

fn real_field(row: &Row, name: &str) -> Option<f64> {
    row.fields
        .iter()
        .find(|f| f.name == name)
        .and_then(|f| match f.value {
            FieldValue::Real(r) => Some(r),
            _ => None,
        })
}

#[test]
fn committed_artifact_regenerates_byte_for_byte() {
    let regenerated = obs_bench_artifact(RunMode::Parallel).to_json();
    assert_eq!(
        regenerated,
        committed(),
        "BENCH_observability.json drifted from what the instrumented \
         suite produces under master seed {BENCH_SEED}; regenerate it \
         with `cargo run --release -p drs-bench --bin obs_report` if \
         the change is intentional"
    );
}

#[test]
fn serial_and_parallel_artifacts_are_byte_identical() {
    let parallel = obs_bench_artifact(RunMode::Parallel);
    let serial = obs_bench_artifact(RunMode::Serial);
    assert_eq!(parallel.to_json(), serial.to_json());
}

#[test]
fn every_probe_overhead_cell_stays_within_budget() {
    let artifact = obs_bench_artifact(RunMode::Parallel);
    let overhead = artifact.get("probe_overhead").expect("overhead section");
    assert!(!overhead.rows.is_empty());
    for row in &overhead.rows {
        assert_eq!(
            count_field(row, "within_budget"),
            Some(1),
            "{}: probe bytes exceeded the Figure 1 budget",
            row.id
        );
        let bytes_a = count_field(row, "probe_bytes_a").expect("bytes_a");
        let budget = real_field(row, "budget_bytes").expect("budget");
        assert!(bytes_a > 0, "{}: probes observed", row.id);
        assert!(bytes_a as f64 <= budget, "{}: measured ≤ budgeted", row.id);
    }
}

#[test]
fn goodput_cells_show_monotone_probe_budget_payoff() {
    // The committed section must carry the claim it was built to pin:
    // every cell's fluid ledger balanced exactly, every failover both
    // stalled and resumed sessions, and a bigger probe budget never
    // lengthened the worst session interruption.
    let artifact = obs_bench_artifact(RunMode::Parallel);
    let sec = artifact
        .get("goodput_under_failover")
        .expect("goodput section");
    assert!(sec.rows.len() >= 2, "need a ladder to compare budgets");
    let mut prev_worst: Option<u64> = None;
    for row in &sec.rows {
        assert_eq!(count_field(row, "conserved"), Some(1), "{}", row.id);
        assert!(count_field(row, "stall_windows").unwrap_or(0) > 0, "{}", row.id);
        assert!(
            count_field(row, "resumed_windows").unwrap_or(0) > 0,
            "{}",
            row.id
        );
        let worst = count_field(row, "worst_interruption_ns").expect("worst");
        if let Some(p) = prev_worst {
            assert!(
                worst <= p,
                "{}: bigger budget, longer worst interruption ({worst} > {p})",
                row.id
            );
        }
        prev_worst = Some(worst);
    }
}

#[test]
fn empty_histograms_serialize_as_null_not_zero() {
    // The static protocol never fails over, so its failover-latency
    // histogram is empty — the committed artifact must carry `null`
    // quantiles for it, never a fabricated 0 ns.
    let json = committed();
    let static_row = json
        .lines()
        .find(|l| l.contains("\"id\": \"static\""))
        .expect("static protocol row present");
    assert!(static_row.contains("\"count\": 0"));
    for q in ["mean_ns", "min_ns", "max_ns", "p50_ns", "p99_ns", "p999_ns"] {
        assert!(
            static_row.contains(&format!("\"{q}\": null")),
            "static row must report {q} as null, got: {static_row}"
        );
    }
    assert!(
        !static_row.contains("_ns\": 0"),
        "no quantile of an empty histogram may print as 0"
    );
}
