//! Long-horizon churn stress: DRS clusters under sustained random
//! failure/repair churn must stay correct (no loops, no lost bookkeeping,
//! high delivery) for many simulated minutes.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use drs::core::{DrsConfig, DrsDaemon};
use drs::sim::app::Workload;
use drs::sim::fault::FaultPlan;
use drs::sim::{ClusterSpec, NodeId, SimDuration, SimTime, World};

fn churn_run(n: usize, seed: u64, minutes: u64) -> (f64, u64, u64) {
    let cfg = DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(50))
        .probe_interval(SimDuration::from_millis(250));
    let spec = ClusterSpec::new(n).seed(seed);
    let mut w = World::new(spec, move |id| DrsDaemon::new(id, n, cfg));

    let horizon = SimDuration::from_secs(60 * minutes);
    let mut rng = SmallRng::seed_from_u64(seed);
    // A fault roughly every 10 s, repaired after 5 s: constant churn, but
    // rarely more than one or two concurrent failures.
    let plan = FaultPlan::poisson_process(
        horizon,
        SimDuration::from_secs(10),
        SimDuration::from_secs(5),
        n,
        2,
        &mut rng,
    );
    w.schedule_faults(plan);

    let wl = Workload::uniform_random(
        n,
        SimTime(1_000_000_000),
        horizon,
        (60 * minutes) as usize * 4, // ~4 messages/s cluster-wide
        256,
        &mut rng,
    );
    w.schedule_workload(&wl);

    w.run_for(horizon + SimDuration::from_secs(200));
    let stats = w.app_stats();
    let ttl_drops: u64 = (0..n as u32)
        .map(|i| w.host(NodeId(i)).counters.dropped_ttl)
        .sum();
    (stats.delivery_ratio(), stats.gave_up, ttl_drops)
}

#[test]
fn five_minutes_of_churn_stays_healthy() {
    let (ratio, gave_up, ttl_drops) = churn_run(8, 42, 5);
    // Single-component failures are always survivable and DRS repairs in
    // well under a transport lifetime; only unlucky overlapping failures
    // (both hubs / both NICs of an endpoint) can cost a message.
    assert!(ratio > 0.99, "delivery ratio {ratio}");
    assert!(gave_up <= 12, "gave up {gave_up}");
    assert_eq!(ttl_drops, 0, "no routing loops, ever");
}

#[test]
fn churn_outcome_is_seed_deterministic() {
    assert_eq!(churn_run(6, 7, 2), churn_run(6, 7, 2));
}

#[test]
#[ignore = "heavy: ~an hour of virtual time; run with --ignored"]
fn one_hour_of_churn() {
    let (ratio, _gave_up, ttl_drops) = churn_run(12, 1999, 60);
    assert!(ratio > 0.99, "delivery ratio {ratio}");
    assert_eq!(ttl_drops, 0);
}
