//! Property-based tests (proptest) over the cross-crate invariants: the
//! connectivity predicate's monotonicity, Equation 1's bounds, component
//! index conventions, and simulator determinism under random scenarios.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use drs::analytic::components::FailureSet;
use drs::analytic::connectivity::{all_pairs_connected, pair_connected};
use drs::analytic::exact::{component_count, p_success};
use drs::analytic::montecarlo::sample_failure_set;
use drs::core::{DrsConfig, DrsDaemon};
use drs::obs::Histogram;
use drs::sim::fault::{component_to_index, index_to_component, FaultPlan};
use drs::sim::stats::LatencyHistogram;
use drs::sim::{ClusterSpec, NodeId, SimDuration, SimTime, World};

proptest! {
    /// Removing a failure can never disconnect a connected pair
    /// (the predicate is monotone in the failure set).
    #[test]
    fn predicate_is_monotone(n in 2usize..20, seed in any::<u64>(), f in 0usize..10) {
        let m = 2 * n + 2;
        let f = f.min(m);
        let mut rng = SmallRng::seed_from_u64(seed);
        let failures = sample_failure_set(n, f, &mut rng);
        if !pair_connected(n, &failures, 0, 1) {
            // adding any failure keeps it disconnected
            for add in 0..m {
                let mut worse = failures;
                worse.insert(add);
                prop_assert!(!pair_connected(n, &worse, 0, 1),
                    "adding failure {add} reconnected the pair");
            }
        } else {
            // removing any failure keeps it connected
            for del in failures.iter().collect::<Vec<_>>() {
                let mut better = failures;
                better.remove(del);
                prop_assert!(pair_connected(n, &better, 0, 1),
                    "removing failure {del} disconnected the pair");
            }
        }
    }

    /// All-pairs connectivity implies every individual pair's connectivity.
    #[test]
    fn all_pairs_implies_each_pair(n in 2usize..12, seed in any::<u64>(), f in 0usize..8) {
        let f = f.min(2 * n + 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let failures = sample_failure_set(n, f, &mut rng);
        if all_pairs_connected(n, &failures) {
            for s in 0..n {
                for t in 0..n {
                    if s != t {
                        prop_assert!(pair_connected(n, &failures, s, t), "pair ({s},{t})");
                    }
                }
            }
        }
    }

    /// The predicate is symmetric in the pair.
    #[test]
    fn predicate_is_symmetric(n in 2usize..16, seed in any::<u64>(), f in 0usize..10) {
        let f = f.min(2 * n + 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let failures = sample_failure_set(n, f, &mut rng);
        let s = (seed as usize) % n;
        let mut t = (seed as usize / 7) % n;
        if t == s { t = (t + 1) % n; }
        prop_assert_eq!(
            pair_connected(n, &failures, s, t),
            pair_connected(n, &failures, t, s)
        );
    }

    /// By node symmetry of the component model, relabelling the pair does
    /// not change the *probability*; spot-check that the count over a
    /// random failure set matches for pair (0,1) and a random pair when
    /// the set is symmetrized trivially (pure sanity, cheap).
    #[test]
    fn equation1_bounds_and_edges(n in 2u64..80, f_raw in 0u64..20) {
        let f = f_raw.min(component_count(n));
        let p = p_success(n, f);
        prop_assert!((0.0..=1.0).contains(&p));
        if f == 0 || f == 1 {
            prop_assert_eq!(p, 1.0);
        }
        if f == component_count(n) {
            prop_assert_eq!(p, 0.0);
        }
        // More failures never help.
        if f < component_count(n) {
            prop_assert!(p_success(n, f + 1) <= p + 1e-12);
        }
    }

    /// FailureSet insert/remove/iter behave like a set of indices.
    #[test]
    fn failure_set_is_a_set(mut indices in proptest::collection::vec(0usize..256, 0..40)) {
        let set = FailureSet::from_indices(&indices);
        indices.sort_unstable();
        indices.dedup();
        prop_assert_eq!(set.len(), indices.len());
        let got: Vec<usize> = set.iter().collect();
        prop_assert_eq!(got, indices);
    }

    /// Component index mapping is a bijection shared by both crates.
    #[test]
    fn component_indexing_roundtrips(n in 2usize..100, idx_raw in 0usize..202) {
        let idx = idx_raw % (2 * n + 2);
        prop_assert_eq!(component_to_index(index_to_component(idx, n, 2), n, 2), idx);
    }

    /// The full simulator (DRS included) is deterministic: identical
    /// seeds give identical statistics, bit for bit.
    #[test]
    fn simulator_is_deterministic(seed in any::<u64>()) {
        let run = || {
            let n = 5;
            let cfg = DrsConfig::default()
                .probe_timeout(SimDuration::from_millis(50))
                .probe_interval(SimDuration::from_millis(250));
            let spec = ClusterSpec::new(n).seed(seed);
            let mut w = World::new(spec, |id| DrsDaemon::new(id, n, cfg));
            let mut rng = SmallRng::seed_from_u64(seed);
            let (plan, _) = FaultPlan::random_simultaneous(SimTime(500_000_000), n, 2, 3, &mut rng);
            w.schedule_faults(plan);
            w.send_app(SimTime(1_000_000_000), NodeId(0), NodeId(1), 128);
            w.run_for(SimDuration::from_secs(8));
            (
                w.app_stats().clone(),
                w.medium(drs::sim::NetId::A).stats,
                w.medium(drs::sim::NetId::B).stats,
                w.protocol(NodeId(0)).metrics.events.clone(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}

/// Deterministic Fisher–Yates permutation of `0..k` driven by `seed`.
fn permutation(k: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..k).collect();
    for i in (1..k).rev() {
        let j = rand::Rng::gen_range(&mut rng, 0..i + 1);
        order.swap(i, j);
    }
    order
}

const MERGE_QUANTILES: [f64; 6] = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];

proptest! {
    /// Merging K per-worker histograms — in any order — is exactly the
    /// histogram of all samples recorded serially: same count, sum,
    /// min, max, and every quantile bound. This is what makes the
    /// parallel and serial artifact paths byte-identical.
    #[test]
    fn histogram_merge_is_order_independent_and_exact(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let k = k.min(samples.len());
        let mut whole = Histogram::new();
        let mut whole_lat = LatencyHistogram::new();
        let mut parts = vec![Histogram::new(); k];
        let mut parts_lat = vec![LatencyHistogram::new(); k];
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            whole_lat.record(SimDuration(s));
            parts[i % k].record(s);
            parts_lat[i % k].record(SimDuration(s));
        }
        let mut merged = Histogram::new();
        let mut merged_lat = LatencyHistogram::new();
        for idx in permutation(k, seed) {
            merged.merge(&parts[idx]);
            merged_lat.merge(&parts_lat[idx]);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.sum(), whole.sum());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(&merged_lat, &whole_lat);
        for q in MERGE_QUANTILES {
            prop_assert_eq!(
                merged.quantile_upper_bound(q),
                whole.quantile_upper_bound(q),
                "obs quantile {} diverged after merge", q
            );
            prop_assert_eq!(
                merged_lat.quantile_upper_bound(q),
                whole_lat.quantile_upper_bound(q),
                "sim quantile {} diverged after merge", q
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under any random 2-failure scenario, DRS keeps every *connected*
    /// pair deliverable (heavier: fewer cases).
    #[test]
    fn drs_delivers_whatever_the_model_says_is_deliverable(seed in any::<u64>()) {
        let n = 6;
        let mut rng = SmallRng::seed_from_u64(seed);
        let failures = sample_failure_set(n, 2, &mut rng);
        let cfg = DrsConfig::default()
            .probe_timeout(SimDuration::from_millis(50))
            .probe_interval(SimDuration::from_millis(200));
        let transport = drs::sim::scenario::TransportConfig {
            initial_rto: SimDuration::from_millis(100),
            backoff_factor: 2,
            max_retries: 6,
        };
        let spec = ClusterSpec::new(n).seed(seed).transport(transport);
        let mut w = World::new(spec, |id| DrsDaemon::new(id, n, cfg));
        let mut plan = FaultPlan::new();
        for idx in failures.iter() {
            plan = plan.fail_at(SimTime(1_000_000_000), index_to_component(idx, n, 2));
        }
        w.schedule_faults(plan);
        w.run_for(SimDuration::from_secs(5));
        let flow = w.send_app(w.now(), NodeId(0), NodeId(1), 64);
        w.run_for(SimDuration::from_secs(20));
        let delivered = matches!(
            w.flow_outcome(flow),
            Some(drs::sim::world::FlowOutcome::Delivered(_))
        );
        prop_assert_eq!(delivered, pair_connected(n, &failures, 0, 1));
    }
}
