//! Choreographed multi-stage failure scenarios: DRS must track a
//! *sequence* of overlapping failures and repairs, not just a single
//! fault — and it must do so at deployed scale and beyond.

use drs::core::{DrsConfig, DrsDaemon};
use drs::sim::fault::{FaultPlan, SimComponent};
use drs::sim::{ClusterSpec, NetId, NodeId, Route, SimDuration, SimTime, World};

fn cfg() -> DrsConfig {
    DrsConfig::default()
        .probe_timeout(SimDuration::from_millis(50))
        .probe_interval(SimDuration::from_millis(250))
}

fn secs(s: u64) -> SimTime {
    SimTime(s * 1_000_000_000)
}

#[test]
fn cascading_failures_and_repairs_track_correctly() {
    // Timeline:
    //   t=2: hub A fails            -> everything moves to B
    //   t=6: node 1 loses NIC B too -> node 1 unreachable (hub A down, its
    //                                  B NIC down; no gateway can help)
    //   t=10: hub A repaired        -> node 1 reachable via A again
    //   t=14: node 1's NIC B back   -> full health, routes back on A
    let n = 6;
    let mut w = World::new(ClusterSpec::new(n).seed(3), |id| {
        DrsDaemon::new(id, n, cfg())
    });
    w.schedule_faults(
        FaultPlan::new()
            .fail_at(secs(2), SimComponent::Hub(NetId::A))
            .fail_at(secs(6), SimComponent::Nic(NodeId(1), NetId::B))
            .repair_at(secs(10), SimComponent::Hub(NetId::A))
            .repair_at(secs(14), SimComponent::Nic(NodeId(1), NetId::B)),
    );

    // Phase 1: after hub A death, all routes on B.
    w.run_until(secs(5));
    for i in 0..n as u32 {
        for (dst, route) in w.host(NodeId(i)).routes.iter() {
            assert_eq!(route, Route::Direct(NetId::B), "phase1: n{i}->{dst}");
        }
    }

    // Phase 2: node 1 fully dark; traffic to it fails, others fine.
    w.run_until(secs(9));
    let dead = w.send_app(w.now(), NodeId(0), NodeId(1), 64);
    let alive = w.send_app(w.now(), NodeId(0), NodeId(2), 64);
    w.run_until(secs(10).max(w.now()));
    // (resolution checked at the end; hub repair at t=10 will rescue the
    // retransmits of `dead` via network A)

    // Phase 3: hub A back; node 1 reachable on A.
    w.run_until(secs(13));
    assert_eq!(
        w.host(NodeId(0)).routes.get(NodeId(1)),
        Some(Route::Direct(NetId::A)),
        "phase3: node 1 only reachable via A"
    );

    // Phase 4: full repair; everything back on the primary.
    w.run_until(secs(20));
    for i in 0..n as u32 {
        for (dst, route) in w.host(NodeId(i)).routes.iter() {
            assert_eq!(route, Route::Direct(NetId::A), "phase4: n{i}->{dst}");
        }
    }

    // Both probe flows eventually delivered (the transport outlives the
    // dark window thanks to the t=10 repair).
    w.run_for(SimDuration::from_secs(120));
    use drs::sim::world::FlowOutcome;
    assert!(matches!(
        w.flow_outcome(alive),
        Some(FlowOutcome::Delivered(_))
    ));
    assert!(
        matches!(w.flow_outcome(dead), Some(FlowOutcome::Delivered(_))),
        "rescued by the hub repair: {:?}",
        w.flow_outcome(dead)
    );
}

#[test]
fn rolling_nic_failures_never_break_unaffected_pairs() {
    // One NIC fails every 2 s on a different node (net A), with repairs
    // lagging 3 s behind: a rolling wave. Pairs not currently affected
    // must stay on direct routes and deliver promptly throughout.
    let n = 8;
    let mut w = World::new(ClusterSpec::new(n).seed(4), |id| {
        DrsDaemon::new(id, n, cfg())
    });
    let mut plan = FaultPlan::new();
    for k in 0..n as u64 {
        let victim = NodeId(k as u32);
        plan = plan
            .fail_at(secs(2 + 2 * k), SimComponent::Nic(victim, NetId::A))
            .repair_at(secs(5 + 2 * k), SimComponent::Nic(victim, NetId::A));
    }
    w.schedule_faults(plan);
    w.run_for(SimDuration::from_secs(2 * n as u64 + 8));

    // After the wave passes, everything is healthy and on the primary.
    for i in 0..n as u32 {
        for (dst, route) in w.host(NodeId(i)).routes.iter() {
            assert_eq!(route, Route::Direct(NetId::A), "n{i}->{dst}");
        }
        // Each daemon saw at least every other node's failure — and more:
        // while its *own* net-A NIC was down it (correctly) saw every
        // peer as down on A, since its probes could not leave the host.
        let m = &w.protocol(NodeId(i)).metrics;
        assert!(
            m.link_down_events >= (n - 1) as u64,
            "node {i}: only {} detections",
            m.link_down_events
        );
        // Recovery bookkeeping balances exactly: everything that went
        // down came back up (the cluster ends healthy).
        assert_eq!(
            m.link_up_events, m.link_down_events,
            "node {i}: down/up imbalance"
        );
    }
}

#[test]
fn deployed_scale_cluster_converges_quickly() {
    // n=64 (the paper's largest analyzed size): hub failure must still
    // converge within the detection bound, with every route moved.
    let n = 64;
    let c = cfg();
    let mut w = World::new(ClusterSpec::new(n).seed(5), |id| DrsDaemon::new(id, n, c));
    w.run_for(SimDuration::from_secs(2));
    let t0 = w.now();
    w.schedule_faults(FaultPlan::new().fail_at(t0, SimComponent::Hub(NetId::A)));
    w.run_for(c.worst_case_detection() + SimDuration::from_secs(1));
    let mut moved = 0usize;
    for i in 0..n as u32 {
        for (_, route) in w.host(NodeId(i)).routes.iter() {
            if route == Route::Direct(NetId::B) {
                moved += 1;
            }
        }
    }
    assert_eq!(
        moved,
        n * (n - 1),
        "all {} routes moved to net B",
        n * (n - 1)
    );
    // Post-convergence traffic untouched at scale.
    let before = w.app_stats().retransmits;
    for i in 1..8u32 {
        w.send_app(w.now(), NodeId(0), NodeId(i), 256);
    }
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(w.app_stats().delivered, 7);
    assert_eq!(w.app_stats().retransmits, before);
}
