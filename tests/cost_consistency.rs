//! Integration: the analytic Figure 1 cost model and the packet-level
//! simulator agree about what probing costs and how fast it detects.

use drs::core::DrsConfig;
use drs::cost::empirical::{interval_for_budget, measure_probe_cost};
use drs::cost::figure1::{figure1, PAPER_BUDGETS};
use drs::cost::model::ProbeCostModel;
use drs::sim::SimDuration;

#[test]
fn measured_probe_bandwidth_tracks_model_across_budgets() {
    let model = ProbeCostModel::default();
    for &(n, beta) in &[(8u64, 0.05f64), (12, 0.10), (16, 0.15)] {
        let interval = interval_for_budget(&model, n, beta);
        let timeout = SimDuration(interval.as_nanos() / 4).max(SimDuration::from_micros(100));
        let cfg = DrsConfig::default()
            .probe_timeout(timeout)
            .probe_interval(interval);
        let r = measure_probe_cost(n as usize, cfg, SimDuration::from_secs(2), 17);
        let err = (r.probe_utilization - beta).abs() / beta;
        assert!(
            err < 0.10,
            "n={n} beta={beta}: measured {:.4} ({:.1}% off)",
            r.probe_utilization,
            err * 100.0
        );
    }
}

#[test]
fn detection_latency_bounded_by_model_response_time() {
    // Configure daemons at a 10% budget and verify that detection stays
    // within the model's response-time prediction (plus one timeout).
    let model = ProbeCostModel {
        miss_threshold: 2,
        ..ProbeCostModel::default()
    };
    let n = 12u64;
    let interval = model.min_sweep_period(n, 0.10);
    let timeout = SimDuration(interval.as_nanos() / 4).max(SimDuration::from_micros(100));
    let cfg = DrsConfig::default()
        .probe_timeout(timeout)
        .probe_interval(interval)
        .miss_threshold(2);
    let r = measure_probe_cost(n as usize, cfg, SimDuration::from_secs(1), 23);
    let bound = model.response_time(n, 0.10) + timeout + interval;
    assert!(
        r.max_detection <= bound,
        "detection {} exceeds model bound {bound}",
        r.max_detection
    );
}

#[test]
fn figure1_series_consistent_with_direct_model_calls() {
    let model = ProbeCostModel::default();
    let fam = figure1(&model, 100, &PAPER_BUDGETS);
    for s in &fam {
        for &(n, rt) in &s.points {
            assert_eq!(rt, model.response_time(n, s.budget));
        }
    }
}

#[test]
fn paper_bandwidth_percentages_order_the_curves() {
    // 5% needs 2x the time of 10%, which needs 1.5x the time of 15%, etc.
    let model = ProbeCostModel::default();
    let n = 60;
    let t5 = model.response_time(n, 0.05).as_secs_f64();
    let t10 = model.response_time(n, 0.10).as_secs_f64();
    let t15 = model.response_time(n, 0.15).as_secs_f64();
    let t25 = model.response_time(n, 0.25).as_secs_f64();
    assert!((t5 / t10 - 2.0).abs() < 1e-9);
    assert!((t10 / t15 - 1.5).abs() < 1e-9);
    assert!((t15 / t25 - 25.0 / 15.0).abs() < 1e-9);
}
